#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "simarch/cost.hpp"

namespace swhkm::simarch {

/// Phases of one engine iteration, in execution order — the trace assumes
/// the non-overlapped phase model the cost ledger uses. Since the update
/// phase was sharded, kNetComm covers its collectives too (reduce_scatter
/// of the fused accumulator, allgather of the refreshed rows, stats
/// allreduce) and kUpdate is the per-CG shard apply, not a root-serialized
/// full pass.
enum class Phase : int {
  kSampleRead = 0,
  kCentroidStream,
  kCompute,
  kMeshComm,
  kNetComm,
  kUpdate,
};
inline constexpr int kPhaseCount = 6;
const char* phase_name(Phase phase);

/// One simulated-time interval on one core group.
struct TraceEvent {
  std::uint32_t cg = 0;
  std::uint32_t iteration = 0;
  Phase phase = Phase::kSampleRead;
  double start_s = 0;     ///< simulated seconds since run start
  double duration_s = 0;
};

/// One fault/recovery event recorded by the RecoveryDriver: which global
/// iteration the run was at when the fault hit, what it was, and the
/// wall-clock seconds recovery cost (failed attempts + checkpoint reload).
struct FaultMarker {
  std::uint32_t iteration = 0;
  std::string what;
  double wall_s = 0;
};

/// Timeline of an engine run in simulated time: every rank reports its
/// per-iteration cost split, and the trace lays the phases out as
/// intervals (per CG, iterations back to back). Thread-safe appends —
/// engine ranks record concurrently.
///
/// The result is the Gantt-style view HPC people actually debug with:
/// which phase dominates, how imbalanced ranks are, where the machine
/// idles at the AllReduce.
class Trace {
 public:
  /// Record one rank's iteration as six phase intervals. `iteration_start`
  /// is the simulated time the iteration began on this rank (engines pass
  /// their running per-rank clock).
  void record_iteration(std::uint32_t cg, std::uint32_t iteration,
                        double iteration_start, const CostTally& tally);

  std::size_t event_count() const;
  std::vector<TraceEvent> events() const;  ///< copy, sorted by (cg, start)

  /// Total simulated seconds attributed to each phase across all ranks.
  std::vector<double> phase_totals() const;

  /// Longest per-rank simulated completion time (the run's critical path
  /// under the trace's serialization assumptions).
  double makespan() const;

  /// Rank imbalance of one iteration: slowest rank time / mean rank time
  /// (1.0 = perfectly balanced). Degenerate cases — an iteration with no
  /// recorded events, or one whose mean duration is zero — both return the
  /// 1.0 identity: no imbalance was observed.
  double imbalance(std::uint32_t iteration) const;

  /// Record a fault/recovery event on the side channel — fault markers do
  /// not perturb the simulated-time timeline (recovery is wall-clock, not
  /// modelled machine time), but they ride along with the trace so one
  /// artifact tells the whole story of a faulty run.
  void record_fault(std::uint32_t iteration, const std::string& what,
                    double wall_s);

  std::vector<FaultMarker> fault_markers() const;  ///< copy, append order

  /// CSV with header: cg,iteration,phase,start_s,duration_s.
  std::string to_csv() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<FaultMarker> faults_;
};

}  // namespace swhkm::simarch
