#include "simarch/regcomm.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace swhkm::simarch {

std::size_t RegComm::mesh_hops(std::size_t participants) const {
  // Participants occupy ceil(p / cols) rows; the row phase spans up to
  // (cols - 1) hops, the column phase up to (rows_used - 1).
  const std::size_t cols = config_->mesh_cols;
  const std::size_t rows_used = (participants + cols - 1) / cols;
  const std::size_t row_span = std::min(participants, cols);
  return (row_span > 0 ? row_span - 1 : 0) +
         (rows_used > 0 ? rows_used - 1 : 0);
}

double RegComm::allreduce_time(std::size_t bytes,
                               std::size_t participants) const {
  if (participants <= 1) {
    return 0.0;
  }
  const double hop_lat =
      static_cast<double>(mesh_hops(participants)) * config_->reg_hop_latency;
  const double wire = static_cast<double>(bytes) / config_->reg_bandwidth;
  // reduce phase + broadcast phase
  return 2.0 * (hop_lat + wire);
}

double RegComm::broadcast_time(std::size_t bytes,
                               std::size_t participants) const {
  if (participants <= 1) {
    return 0.0;
  }
  return static_cast<double>(mesh_hops(participants)) *
             config_->reg_hop_latency +
         static_cast<double>(bytes) / config_->reg_bandwidth;
}

void RegComm::allreduce_sum(std::span<const std::span<double>> bufs) {
  if (bufs.size() <= 1) {
    return;
  }
  const std::size_t extent = bufs.front().size();
  for (const auto& buf : bufs) {
    SWHKM_REQUIRE(buf.size() == extent, "allreduce buffers must match");
  }
  // Functional: accumulate into the first buffer in fixed CPE order (the
  // mesh reduction is deterministic on hardware too), then copy back out.
  std::span<double> acc = bufs.front();
  for (std::size_t p = 1; p < bufs.size(); ++p) {
    const std::span<double> src = bufs[p];
    for (std::size_t i = 0; i < extent; ++i) {
      acc[i] += src[i];
    }
  }
  for (std::size_t p = 1; p < bufs.size(); ++p) {
    std::copy(acc.begin(), acc.end(), bufs[p].begin());
  }
  const std::size_t bytes = extent * sizeof(double);
  tally_->reg_bytes += bytes * (bufs.size() - 1);
  tally_->mesh_comm_s += allreduce_time(bytes, bufs.size());
}

std::pair<double, std::uint64_t> RegComm::allreduce_min_pair(
    std::span<const std::pair<double, std::uint64_t>> contributions) {
  SWHKM_REQUIRE(!contributions.empty(), "min-pair needs contributions");
  std::pair<double, std::uint64_t> best = contributions.front();
  for (const auto& candidate : contributions.subspan(1)) {
    if (candidate.first < best.first ||
        (candidate.first == best.first && candidate.second < best.second)) {
      best = candidate;
    }
  }
  const std::size_t bytes = sizeof(double) + sizeof(std::uint64_t);
  tally_->reg_bytes += bytes * (contributions.size() - 1);
  tally_->mesh_comm_s += allreduce_time(bytes, contributions.size());
  return best;
}

void RegComm::account_allreduce(std::size_t bytes, std::size_t participants,
                                std::size_t times) {
  if (participants <= 1 || times == 0) {
    return;
  }
  tally_->reg_bytes += bytes * (participants - 1) * times;
  tally_->mesh_comm_s +=
      allreduce_time(bytes, participants) * static_cast<double>(times);
}

void RegComm::account_broadcast(std::size_t bytes, std::size_t participants) {
  if (participants <= 1) {
    return;
  }
  tally_->reg_bytes += bytes * (participants - 1);
  tally_->mesh_comm_s += broadcast_time(bytes, participants);
}

}  // namespace swhkm::simarch
