#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace swhkm::simarch {

/// Parameters of the simulated machine: an SW26010-based system in the
/// default configuration, shrinkable for tests.
///
/// Terminology follows the paper:
///   CPE  — compute processing element (64 per core group, 8x8 mesh,
///          64 KiB software-managed LDM each, no data cache)
///   CG   — core group (64 CPEs + 1 MPE sharing a DMA channel to DDR3)
///   node — one SW26010 processor = 4 CGs
///   supernode — 256 nodes on one interconnection board; traffic between
///          supernodes goes through the central routing switch
///
/// Bandwidths use the paper's symbols: B (DMA), R (register communication),
/// M (inter-node network).
struct MachineConfig {
  // --- core group ---
  std::size_t cpes_per_cg = 64;
  std::size_t mesh_rows = 8;  ///< CPE mesh geometry; rows*cols == cpes_per_cg
  std::size_t mesh_cols = 8;
  std::size_t ldm_bytes = 64 * util::kKiB;  ///< scratchpad per CPE
  double cpe_clock_hz = 1.45e9;
  /// Vector FMA throughput per CPE per cycle (256-bit, single precision).
  double cpe_flops_per_cycle = 8.0;
  /// Fraction of peak FLOPs the assign kernel sustains. Calibrated against
  /// the paper's own Table III (its Sunway time for n=1e9, k=120, d=40 on
  /// 128 nodes implies ~160 GFLOP/s per node, i.e. ~5% of peak — the
  /// expected regime for this memory-bound, gather-heavy kernel).
  double compute_efficiency = 0.05;
  /// Fixed cycles a CPE spends per (sample, centroid-row) on top of the
  /// arithmetic: loop control, pointer setup, LDM partial write-back. This
  /// is what makes narrow dimension slices (Level 3 at small d) pay: a CPE
  /// scoring 8-element rows does almost as much bookkeeping as one scoring
  /// 512-element rows.
  double row_overhead_cycles = 96.0;
  /// Sustained fraction of peak for the GEMM-formulated sweep. The panel
  /// product is a register-tiled mul+add kernel over an LDM-resident
  /// centroid block — the regime where cache-blocked GEMM reaches a large
  /// fraction of peak instead of the gather-bound 5% above. 30% is the
  /// conservative end of measured SW26010 DGEMM efficiency, net of the
  /// exact-rescore tail the bit-identity contract adds.
  double gemm_efficiency = 0.30;
  /// Per-(sample, centroid-row) bookkeeping of the GEMM sweep: the panel
  /// is transposed once per tile and norms come from the per-iteration
  /// cache, so per-row overhead is a fraction of the multi-chain kernel's.
  double gemm_row_overhead_cycles = 24.0;

  // --- memory system ---
  double dma_bandwidth = 32e9;  ///< B: DDR3 bandwidth shared by one CG (B/s)
  double dma_latency = 2.0e-7;  ///< per-transfer issue+setup cost (s)
  double reg_bandwidth = 46.4e9;  ///< R: register-comm bandwidth (B/s)
  double reg_hop_latency = 20e-9;  ///< per mesh hop (s)
  std::uint64_t ddr_bytes_per_node = 32ull * util::kGiB;

  /// CG-to-CG transfers inside one SW26010 chip go through shared DDR3;
  /// faster than the network but slower than register communication.
  double intra_node_bandwidth = 25e9;
  double intra_node_latency = 1.2e-6;

  // --- system ---
  std::size_t cgs_per_node = 4;
  std::size_t nodes = 1;
  std::size_t supernode_nodes = 256;
  double net_bandwidth = 16e9;  ///< M: bidirectional peak per node (B/s)
  /// Per-message cost within a supernode: wire latency plus the MPI
  /// software stack (matching the ~5-10 us cost of small messages on
  /// production interconnects).
  double net_latency = 6.5e-6;
  /// Effective per-node share of the central switch when a collective
  /// spans supernodes (paper: inter-supernode is "less efficient").
  double inter_supernode_bandwidth = 8e9;
  double inter_supernode_latency = 9.5e-6;

  std::size_t elem_bytes = 4;  ///< sizeof(float): sample/centroid elements

  // --- derived quantities ---
  std::size_t num_cgs() const { return nodes * cgs_per_node; }
  std::size_t total_cpes() const { return num_cgs() * cpes_per_cg; }
  /// LDM capacity in data elements, the unit of the paper's constraints.
  std::size_t ldm_elems() const { return ldm_bytes / elem_bytes; }
  double cpe_flops() const { return cpe_clock_hz * cpe_flops_per_cycle; }
  /// Seconds one CPE spends scoring one centroid row of `row_width`
  /// elements against one sample: arithmetic at sustained rate plus the
  /// fixed per-row overhead.
  double assign_row_seconds(std::size_t row_width) const {
    return 2.0 * static_cast<double>(row_width) /
               (cpe_flops() * compute_efficiency) +
           row_overhead_cycles / cpe_clock_hz;
  }
  /// Same unit of work through the GEMM-formulated sweep (one dot-product
  /// row of the -2 X C^T panel product): identical 2*row_width flop count,
  /// sustained at gemm_efficiency with the amortised per-row overhead.
  double gemm_row_seconds(std::size_t row_width) const {
    return 2.0 * static_cast<double>(row_width) /
               (cpe_flops() * gemm_efficiency) +
           gemm_row_overhead_cycles / cpe_clock_hz;
  }
  double cg_flops() const {
    return cpe_flops() * static_cast<double>(cpes_per_cg);
  }
  std::size_t num_supernodes() const {
    return (nodes + supernode_nodes - 1) / supernode_nodes;
  }

  /// Payload size (bytes) at which the inter-supernode stage of a
  /// hierarchical allreduce should switch from the latency-optimal
  /// binomial tree to the bandwidth-optimal reduce_scatter+allgather
  /// exchange. Derived from this machine's inter-supernode latency L and
  /// bandwidth B rather than hard-coded: with S supernode leaders and
  /// lg = ceil(log2 S), the tree moves the full payload p through
  /// 2*lg stages (2*lg*(L + p/B)) while the halving/doubling exchange
  /// pays twice the per-stage message latency (each stage is a
  /// bidirectional exchange) but only 2*((S-1)/S)*p of bandwidth:
  /// 4*lg*L + 2*((S-1)/S)*p/B. Equating gives
  ///   p* = lg * L * B / (lg - (S-1)/S).
  /// For the SW26010 terms at S = 2 this lands near 152 KB — the 72 B
  /// gated-tail MinLoc2 records stay on the tree, the multi-MB
  /// centroid-update payloads take the bandwidth schedule.
  std::size_t collective_crossover_bytes() const;

  /// Throws InvalidArgument when internally inconsistent (mesh geometry,
  /// zero sizes, non-positive bandwidths).
  void validate() const;

  std::string summary() const;

  // --- factories ---
  /// Sunway TaihuLight subset with the given processor (node) count, as
  /// used in the paper's three experiment setups (1 / 256 / 4096 nodes).
  static MachineConfig sw26010(std::size_t nodes);
  /// A tiny machine for unit tests: few CPEs, small LDM, 1..n nodes.
  /// Functional semantics identical to the real shape, constraints bite
  /// at laptop-scale problem sizes.
  static MachineConfig tiny(std::size_t nodes = 1, std::size_t cpes_per_cg = 4,
                            std::size_t ldm_bytes = 4 * util::kKiB);
};

}  // namespace swhkm::simarch
