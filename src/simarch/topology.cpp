#include "simarch/topology.hpp"

#include <algorithm>
#include <cstdint>

#include "util/error.hpp"

namespace swhkm::simarch {

Topology::Topology(const MachineConfig& config) : config_(&config) {
  config.validate();
}

double Topology::message_time(std::size_t bytes, std::size_t cg_a,
                              std::size_t cg_b) const {
  if (cg_a == cg_b) {
    return 0.0;
  }
  double bandwidth = 0;
  double latency = 0;
  if (same_node(cg_a, cg_b)) {
    bandwidth = config_->intra_node_bandwidth;
    latency = config_->intra_node_latency;
  } else if (same_supernode(cg_a, cg_b)) {
    bandwidth = config_->net_bandwidth;
    latency = config_->net_latency;
  } else {
    bandwidth = config_->inter_supernode_bandwidth;
    latency = config_->inter_supernode_latency;
  }
  return latency + static_cast<double>(bytes) / bandwidth;
}

double Topology::allreduce_time(std::size_t bytes, std::size_t first_cg,
                                std::size_t count) const {
  SWHKM_REQUIRE(first_cg + count <= num_cgs(), "CG range out of machine");
  std::vector<std::size_t> cgs(count);
  for (std::size_t i = 0; i < count; ++i) {
    cgs[i] = first_cg + i;
  }
  return allreduce_time(bytes, cgs);
}

double Topology::allreduce_time(std::size_t bytes,
                                const std::vector<std::size_t>& cgs) const {
  const std::size_t count = cgs.size();
  if (count <= 1) {
    return 0.0;
  }
  double total = 0.0;
  // Recursive doubling over the rank list; for non-powers of two the
  // surplus ranks fold into the nearest power of two first (one extra
  // exchange), which is the standard MPI implementation shape.
  const std::size_t pow2 = [&] {
    std::size_t p = 1;
    while (p * 2 <= count) {
      p *= 2;
    }
    return p;
  }();
  if (pow2 != count) {
    // fold-in stage: rank i >= pow2 sends to i - pow2
    double worst = 0.0;
    for (std::size_t r = pow2; r < count; ++r) {
      worst = std::max(worst, message_time(bytes, cgs[r], cgs[r - pow2]));
    }
    total += 2.0 * worst;  // fold in before, fold out after
  }
  for (std::size_t stride = 1; stride < pow2; stride *= 2) {
    double worst = 0.0;
    for (std::size_t r = 0; r < pow2; ++r) {
      const std::size_t partner = r ^ stride;
      if (partner < r) {
        continue;  // pair counted once
      }
      worst = std::max(worst, message_time(bytes, cgs[r], cgs[partner]));
    }
    total += worst;
  }
  return total;
}

namespace {

std::size_t largest_pow2_at_most(std::size_t count) {
  std::size_t p = 1;
  while (p * 2 <= count) {
    p *= 2;
  }
  return p;
}

}  // namespace

double Topology::reduce_scatter_time(std::size_t bytes, std::size_t first_cg,
                                     std::size_t count) const {
  SWHKM_REQUIRE(first_cg + count <= num_cgs(), "CG range out of machine");
  if (count <= 1) {
    return 0.0;
  }
  const std::size_t pow2 = largest_pow2_at_most(count);
  double total = 0.0;
  if (pow2 != count) {
    // Surplus ranks fold their full partials into the nearest power of two.
    double worst = 0.0;
    for (std::size_t r = pow2; r < count; ++r) {
      worst = std::max(
          worst, message_time(bytes, first_cg + r, first_cg + r - pow2));
    }
    total += worst;
  }
  // Recursive halving: each stage hands off half of the payload a rank is
  // still responsible for, so stage payloads shrink bytes/2, bytes/4, ...
  std::size_t stage_bytes = bytes;
  for (std::size_t stride = 1; stride < pow2; stride *= 2) {
    stage_bytes = (stage_bytes + 1) / 2;
    double worst = 0.0;
    for (std::size_t r = 0; r < pow2; ++r) {
      const std::size_t partner = r ^ stride;
      if (partner < r) {
        continue;  // pair counted once
      }
      worst = std::max(
          worst, message_time(stage_bytes, first_cg + r, first_cg + partner));
    }
    total += worst;
  }
  return total;
}

double Topology::allgather_time(std::size_t bytes, std::size_t first_cg,
                                std::size_t count) const {
  SWHKM_REQUIRE(first_cg + count <= num_cgs(), "CG range out of machine");
  if (count <= 1) {
    return 0.0;
  }
  const std::size_t pow2 = largest_pow2_at_most(count);
  double total = 0.0;
  // Recursive doubling: stage payloads grow from one shard up to half the
  // total — the mirror image of the reduce_scatter above.
  std::size_t stage_bytes = (bytes + pow2 - 1) / pow2;
  for (std::size_t stride = 1; stride < pow2; stride *= 2) {
    double worst = 0.0;
    for (std::size_t r = 0; r < pow2; ++r) {
      const std::size_t partner = r ^ stride;
      if (partner < r) {
        continue;  // pair counted once
      }
      worst = std::max(
          worst, message_time(stage_bytes, first_cg + r, first_cg + partner));
    }
    total += worst;
    stage_bytes *= 2;
  }
  if (pow2 != count) {
    // Surplus ranks receive the assembled payload in a final fold-out.
    double worst = 0.0;
    for (std::size_t r = pow2; r < count; ++r) {
      worst = std::max(
          worst, message_time(bytes, first_cg + r - pow2, first_cg + r));
    }
    total += worst;
  }
  return total;
}

double Topology::broadcast_time(std::size_t bytes, std::size_t first_cg,
                                std::size_t count) const {
  SWHKM_REQUIRE(first_cg + count <= num_cgs(), "CG range out of machine");
  if (count <= 1) {
    return 0.0;
  }
  // Binomial tree from rank 0 of the range: stage s doubles the reached
  // prefix; stage cost is its worst link.
  double total = 0.0;
  for (std::size_t reached = 1; reached < count; reached *= 2) {
    double worst = 0.0;
    const std::size_t senders = std::min(reached, count - reached);
    for (std::size_t s = 0; s < senders; ++s) {
      worst = std::max(
          worst, message_time(bytes, first_cg + s, first_cg + s + reached));
    }
    total += worst;
  }
  return total;
}

double Topology::min_combine_time(std::size_t first_cg,
                                  std::size_t count) const {
  // (double, uint64) payload: 16 bytes — pure latency in practice.
  return allreduce_time(sizeof(double) + sizeof(std::uint64_t), first_cg,
                        count);
}

const char* to_string(CollectiveAlgo algo) {
  switch (algo) {
    case CollectiveAlgo::kFlat:
      return "flat";
    case CollectiveAlgo::kBinomialTree:
      return "tree";
    case CollectiveAlgo::kReduceScatterAllgather:
      return "rs_ag";
  }
  return "?";
}

namespace {

std::uint32_t stage_count(std::size_t count) {
  std::uint32_t stages = 0;
  std::size_t p = 1;
  while (p < count) {
    p *= 2;
    ++stages;
  }
  return stages;
}

}  // namespace

std::vector<std::vector<std::size_t>> Topology::segments_by_supernode(
    const std::vector<std::size_t>& cgs) const {
  std::vector<std::vector<std::size_t>> segments;
  std::vector<std::size_t> seen;  // supernode id per segment, append order
  for (const std::size_t cg : cgs) {
    const std::size_t sn = supernode_of_cg(cg);
    std::size_t idx = seen.size();
    for (std::size_t i = 0; i < seen.size(); ++i) {
      if (seen[i] == sn) {
        idx = i;
        break;
      }
    }
    if (idx == seen.size()) {
      seen.push_back(sn);
      segments.emplace_back();
    }
    segments[idx].push_back(cg);
  }
  return segments;
}

double Topology::binomial_tree_time(std::size_t bytes,
                                    const std::vector<std::size_t>& cgs)
    const {
  // Binomial tree over list indices; stage cost is its worst link — the
  // list-set mirror of broadcast_time (a reduce is the same stage
  // structure run in reverse).
  const std::size_t count = cgs.size();
  double total = 0.0;
  for (std::size_t reached = 1; reached < count; reached *= 2) {
    double worst = 0.0;
    const std::size_t senders = std::min(reached, count - reached);
    for (std::size_t s = 0; s < senders; ++s) {
      worst = std::max(worst, message_time(bytes, cgs[s], cgs[s + reached]));
    }
    total += worst;
  }
  return total;
}

double Topology::halving_time(std::size_t bytes,
                              const std::vector<std::size_t>& cgs) const {
  // reduce_scatter_time's structure over an arbitrary rank list.
  const std::size_t count = cgs.size();
  if (count <= 1) {
    return 0.0;
  }
  const std::size_t pow2 = largest_pow2_at_most(count);
  double total = 0.0;
  if (pow2 != count) {
    double worst = 0.0;
    for (std::size_t r = pow2; r < count; ++r) {
      worst = std::max(worst, message_time(bytes, cgs[r], cgs[r - pow2]));
    }
    total += worst;
  }
  std::size_t stage_bytes = bytes;
  for (std::size_t stride = 1; stride < pow2; stride *= 2) {
    stage_bytes = (stage_bytes + 1) / 2;
    double worst = 0.0;
    for (std::size_t r = 0; r < pow2; ++r) {
      const std::size_t partner = r ^ stride;
      if (partner < r) {
        continue;
      }
      worst = std::max(worst, message_time(stage_bytes, cgs[r], cgs[partner]));
    }
    total += worst;
  }
  return total;
}

double Topology::doubling_time(std::size_t bytes,
                               const std::vector<std::size_t>& cgs) const {
  // allgather_time's structure over an arbitrary rank list.
  const std::size_t count = cgs.size();
  if (count <= 1) {
    return 0.0;
  }
  const std::size_t pow2 = largest_pow2_at_most(count);
  double total = 0.0;
  std::size_t stage_bytes = (bytes + pow2 - 1) / pow2;
  for (std::size_t stride = 1; stride < pow2; stride *= 2) {
    double worst = 0.0;
    for (std::size_t r = 0; r < pow2; ++r) {
      const std::size_t partner = r ^ stride;
      if (partner < r) {
        continue;
      }
      worst = std::max(worst, message_time(stage_bytes, cgs[r], cgs[partner]));
    }
    total += worst;
    stage_bytes *= 2;
  }
  if (pow2 != count) {
    double worst = 0.0;
    for (std::size_t r = pow2; r < count; ++r) {
      worst = std::max(worst, message_time(bytes, cgs[r - pow2], cgs[r]));
    }
    total += worst;
  }
  return total;
}

CollectiveCharge Topology::hier_allreduce_charge(
    std::size_t bytes, std::size_t first_cg, std::size_t count,
    std::size_t crossover_bytes) const {
  SWHKM_REQUIRE(first_cg + count <= num_cgs(), "CG range out of machine");
  std::vector<std::size_t> cgs(count);
  for (std::size_t i = 0; i < count; ++i) {
    cgs[i] = first_cg + i;
  }
  return hier_allreduce_charge(bytes, cgs, crossover_bytes);
}

CollectiveCharge Topology::hier_allreduce_charge(
    std::size_t bytes, const std::vector<std::size_t>& cgs,
    std::size_t crossover_bytes) const {
  CollectiveCharge charge;
  const std::size_t count = cgs.size();
  if (count <= 1) {
    return charge;
  }
  const std::vector<std::vector<std::size_t>> segments =
      segments_by_supernode(cgs);
  const std::size_t supernodes = segments.size();
  if (supernodes <= 1) {
    // The hierarchy degenerates: charge exactly the flat schedule so
    // sub-supernode machines see identical modeled times.
    charge.seconds = allreduce_time(bytes, cgs);
    charge.intra_rounds = stage_count(count);
    charge.algo = CollectiveAlgo::kFlat;
    return charge;
  }
  const double latency = config_->inter_supernode_latency;
  const double bandwidth = config_->inter_supernode_bandwidth;
  const std::uint32_t lg = stage_count(supernodes);
  const double frac = (static_cast<double>(supernodes) - 1.0) /
                      static_cast<double>(supernodes);
  std::size_t min_seg = count;
  std::uint32_t worst_seg_stages = 0;
  for (const auto& seg : segments) {
    min_seg = std::min(min_seg, seg.size());
    worst_seg_stages = std::max(worst_seg_stages, stage_count(seg.size()));
  }
  // Crossing bytes do not depend on the inter algorithm: the tree moves
  // (S-1) full payloads up and down; the homologous-shard exchange moves
  // 2*((S-1)/S)*shard per participant over count/S participant sets.
  charge.crossing_bytes = 2 *
                          static_cast<std::uint64_t>(supernodes - 1) *
                          static_cast<std::uint64_t>(bytes);
  charge.inter_rounds = 2 * lg;
  if (bytes <= crossover_bytes) {
    // Latency-optimal sandwich: binomial fold up within each segment,
    // full-payload binomial tree among the leaders, fan back out.
    double intra = 0.0;
    for (const auto& seg : segments) {
      intra = std::max(intra, binomial_tree_time(bytes, seg));
    }
    charge.seconds =
        2.0 * intra +
        2.0 * lg * (latency + static_cast<double>(bytes) / bandwidth);
    charge.intra_rounds = 2 * worst_seg_stages;
    charge.algo = CollectiveAlgo::kBinomialTree;
  } else {
    // Bandwidth-optimal sandwich: reduce-scatter within each segment so
    // every rank owns a 1/|segment| shard, allreduce each homologous
    // shard across the S supernodes (halving+doubling: bidirectional
    // stage latency, but only 2*frac of the shard in bandwidth), then
    // allgather within each segment.
    double intra = 0.0;
    for (const auto& seg : segments) {
      intra = std::max(intra, halving_time(bytes, seg) +
                                  doubling_time(bytes, seg));
    }
    const double shard =
        static_cast<double>(bytes) / static_cast<double>(min_seg);
    charge.seconds =
        intra + 4.0 * lg * latency + 2.0 * frac * shard / bandwidth;
    charge.intra_rounds = 2 * worst_seg_stages;
    charge.algo = CollectiveAlgo::kReduceScatterAllgather;
  }
  return charge;
}

CollectiveCharge Topology::hier_reduce_scatter_charge(
    std::size_t bytes, std::size_t first_cg, std::size_t count,
    std::size_t crossover_bytes) const {
  SWHKM_REQUIRE(first_cg + count <= num_cgs(), "CG range out of machine");
  CollectiveCharge charge;
  if (count <= 1) {
    return charge;
  }
  std::vector<std::size_t> cgs(count);
  for (std::size_t i = 0; i < count; ++i) {
    cgs[i] = first_cg + i;
  }
  const std::vector<std::vector<std::size_t>> segments =
      segments_by_supernode(cgs);
  const std::size_t supernodes = segments.size();
  if (supernodes <= 1) {
    charge.seconds = reduce_scatter_time(bytes, first_cg, count);
    charge.intra_rounds = stage_count(count);
    charge.algo = CollectiveAlgo::kFlat;
    return charge;
  }
  const double latency = config_->inter_supernode_latency;
  const double bandwidth = config_->inter_supernode_bandwidth;
  const std::uint32_t lg = stage_count(supernodes);
  const double frac = (static_cast<double>(supernodes) - 1.0) /
                      static_cast<double>(supernodes);
  std::size_t min_seg = count;
  double intra = 0.0;
  std::uint32_t worst_seg_stages = 0;
  for (const auto& seg : segments) {
    min_seg = std::min(min_seg, seg.size());
    worst_seg_stages = std::max(worst_seg_stages, stage_count(seg.size()));
    intra = std::max(intra, halving_time(bytes, seg));
  }
  charge.intra_rounds = worst_seg_stages;
  if (bytes > crossover_bytes) {
    // Halving across supernodes on the per-rank shards.
    const double shard =
        static_cast<double>(bytes) / static_cast<double>(min_seg);
    charge.seconds = intra + 2.0 * lg * latency + frac * shard / bandwidth;
    charge.crossing_bytes = static_cast<std::uint64_t>(supernodes - 1) *
                            static_cast<std::uint64_t>(bytes);
    charge.inter_rounds = lg;
    charge.algo = CollectiveAlgo::kReduceScatterAllgather;
  } else {
    // Tree reduce among leaders plus one range-scatter wave back out.
    charge.seconds =
        intra +
        (lg + 1.0) * (latency + static_cast<double>(bytes) / bandwidth);
    charge.crossing_bytes = (static_cast<std::uint64_t>(supernodes - 1) + 1) *
                            static_cast<std::uint64_t>(bytes);
    charge.inter_rounds = lg + 1;
    charge.algo = CollectiveAlgo::kBinomialTree;
  }
  return charge;
}

CollectiveCharge Topology::hier_allgather_charge(std::size_t bytes,
                                                 std::size_t first_cg,
                                                 std::size_t count) const {
  SWHKM_REQUIRE(first_cg + count <= num_cgs(), "CG range out of machine");
  CollectiveCharge charge;
  if (count <= 1) {
    return charge;
  }
  std::vector<std::size_t> cgs(count);
  for (std::size_t i = 0; i < count; ++i) {
    cgs[i] = first_cg + i;
  }
  const std::vector<std::vector<std::size_t>> segments =
      segments_by_supernode(cgs);
  const std::size_t supernodes = segments.size();
  if (supernodes <= 1) {
    charge.seconds = allgather_time(bytes, first_cg, count);
    charge.intra_rounds = stage_count(count);
    charge.algo = CollectiveAlgo::kFlat;
    return charge;
  }
  const double latency = config_->inter_supernode_latency;
  const double bandwidth = config_->inter_supernode_bandwidth;
  const std::uint32_t lg = stage_count(supernodes);
  const double frac = (static_cast<double>(supernodes) - 1.0) /
                      static_cast<double>(supernodes);
  double intra = 0.0;
  std::uint32_t worst_seg_stages = 0;
  for (const auto& seg : segments) {
    worst_seg_stages = std::max(worst_seg_stages, stage_count(seg.size()));
    // Assemble the segment's own block, then fan the full payload back
    // out once the leaders have exchanged blocks.
    const std::size_t block =
        bytes * seg.size() / count;
    intra = std::max(intra, doubling_time(block, seg) +
                                binomial_tree_time(bytes, seg));
  }
  charge.seconds =
      intra + 2.0 * lg * latency + frac * static_cast<double>(bytes) /
                                       bandwidth;
  charge.crossing_bytes = static_cast<std::uint64_t>(supernodes - 1) *
                          static_cast<std::uint64_t>(bytes);
  charge.intra_rounds = 2 * worst_seg_stages;
  charge.inter_rounds = lg;
  charge.algo = CollectiveAlgo::kReduceScatterAllgather;
  return charge;
}

std::uint64_t Topology::flat_allreduce_crossing_bytes(
    std::size_t bytes, std::size_t first_cg, std::size_t count) const {
  std::vector<std::size_t> cgs(count);
  for (std::size_t i = 0; i < count; ++i) {
    cgs[i] = first_cg + i;
  }
  return flat_allreduce_crossing_bytes(bytes, cgs);
}

std::uint64_t Topology::flat_allreduce_crossing_bytes(
    std::size_t bytes, const std::vector<std::size_t>& cgs) const {
  const std::size_t count = cgs.size();
  if (count <= 1) {
    return 0;
  }
  std::uint64_t total = 0;
  const std::size_t pow2 = largest_pow2_at_most(count);
  if (pow2 != count) {
    for (std::size_t r = pow2; r < count; ++r) {
      if (!same_supernode(cgs[r], cgs[r - pow2])) {
        total += 2 * static_cast<std::uint64_t>(bytes);  // fold in + out
      }
    }
  }
  for (std::size_t stride = 1; stride < pow2; stride *= 2) {
    for (std::size_t r = 0; r < pow2; ++r) {
      const std::size_t partner = r ^ stride;
      if (partner < r) {
        continue;
      }
      if (!same_supernode(cgs[r], cgs[partner])) {
        total += 2 * static_cast<std::uint64_t>(bytes);  // both directions
      }
    }
  }
  return total;
}

}  // namespace swhkm::simarch
