#include "simarch/topology.hpp"

#include <algorithm>
#include <cstdint>

#include "util/error.hpp"

namespace swhkm::simarch {

Topology::Topology(const MachineConfig& config) : config_(&config) {
  config.validate();
}

double Topology::message_time(std::size_t bytes, std::size_t cg_a,
                              std::size_t cg_b) const {
  if (cg_a == cg_b) {
    return 0.0;
  }
  double bandwidth = 0;
  double latency = 0;
  if (same_node(cg_a, cg_b)) {
    bandwidth = config_->intra_node_bandwidth;
    latency = config_->intra_node_latency;
  } else if (same_supernode(cg_a, cg_b)) {
    bandwidth = config_->net_bandwidth;
    latency = config_->net_latency;
  } else {
    bandwidth = config_->inter_supernode_bandwidth;
    latency = config_->inter_supernode_latency;
  }
  return latency + static_cast<double>(bytes) / bandwidth;
}

double Topology::allreduce_time(std::size_t bytes, std::size_t first_cg,
                                std::size_t count) const {
  SWHKM_REQUIRE(first_cg + count <= num_cgs(), "CG range out of machine");
  std::vector<std::size_t> cgs(count);
  for (std::size_t i = 0; i < count; ++i) {
    cgs[i] = first_cg + i;
  }
  return allreduce_time(bytes, cgs);
}

double Topology::allreduce_time(std::size_t bytes,
                                const std::vector<std::size_t>& cgs) const {
  const std::size_t count = cgs.size();
  if (count <= 1) {
    return 0.0;
  }
  double total = 0.0;
  // Recursive doubling over the rank list; for non-powers of two the
  // surplus ranks fold into the nearest power of two first (one extra
  // exchange), which is the standard MPI implementation shape.
  const std::size_t pow2 = [&] {
    std::size_t p = 1;
    while (p * 2 <= count) {
      p *= 2;
    }
    return p;
  }();
  if (pow2 != count) {
    // fold-in stage: rank i >= pow2 sends to i - pow2
    double worst = 0.0;
    for (std::size_t r = pow2; r < count; ++r) {
      worst = std::max(worst, message_time(bytes, cgs[r], cgs[r - pow2]));
    }
    total += 2.0 * worst;  // fold in before, fold out after
  }
  for (std::size_t stride = 1; stride < pow2; stride *= 2) {
    double worst = 0.0;
    for (std::size_t r = 0; r < pow2; ++r) {
      const std::size_t partner = r ^ stride;
      if (partner < r) {
        continue;  // pair counted once
      }
      worst = std::max(worst, message_time(bytes, cgs[r], cgs[partner]));
    }
    total += worst;
  }
  return total;
}

namespace {

std::size_t largest_pow2_at_most(std::size_t count) {
  std::size_t p = 1;
  while (p * 2 <= count) {
    p *= 2;
  }
  return p;
}

}  // namespace

double Topology::reduce_scatter_time(std::size_t bytes, std::size_t first_cg,
                                     std::size_t count) const {
  SWHKM_REQUIRE(first_cg + count <= num_cgs(), "CG range out of machine");
  if (count <= 1) {
    return 0.0;
  }
  const std::size_t pow2 = largest_pow2_at_most(count);
  double total = 0.0;
  if (pow2 != count) {
    // Surplus ranks fold their full partials into the nearest power of two.
    double worst = 0.0;
    for (std::size_t r = pow2; r < count; ++r) {
      worst = std::max(
          worst, message_time(bytes, first_cg + r, first_cg + r - pow2));
    }
    total += worst;
  }
  // Recursive halving: each stage hands off half of the payload a rank is
  // still responsible for, so stage payloads shrink bytes/2, bytes/4, ...
  std::size_t stage_bytes = bytes;
  for (std::size_t stride = 1; stride < pow2; stride *= 2) {
    stage_bytes = (stage_bytes + 1) / 2;
    double worst = 0.0;
    for (std::size_t r = 0; r < pow2; ++r) {
      const std::size_t partner = r ^ stride;
      if (partner < r) {
        continue;  // pair counted once
      }
      worst = std::max(
          worst, message_time(stage_bytes, first_cg + r, first_cg + partner));
    }
    total += worst;
  }
  return total;
}

double Topology::allgather_time(std::size_t bytes, std::size_t first_cg,
                                std::size_t count) const {
  SWHKM_REQUIRE(first_cg + count <= num_cgs(), "CG range out of machine");
  if (count <= 1) {
    return 0.0;
  }
  const std::size_t pow2 = largest_pow2_at_most(count);
  double total = 0.0;
  // Recursive doubling: stage payloads grow from one shard up to half the
  // total — the mirror image of the reduce_scatter above.
  std::size_t stage_bytes = (bytes + pow2 - 1) / pow2;
  for (std::size_t stride = 1; stride < pow2; stride *= 2) {
    double worst = 0.0;
    for (std::size_t r = 0; r < pow2; ++r) {
      const std::size_t partner = r ^ stride;
      if (partner < r) {
        continue;  // pair counted once
      }
      worst = std::max(
          worst, message_time(stage_bytes, first_cg + r, first_cg + partner));
    }
    total += worst;
    stage_bytes *= 2;
  }
  if (pow2 != count) {
    // Surplus ranks receive the assembled payload in a final fold-out.
    double worst = 0.0;
    for (std::size_t r = pow2; r < count; ++r) {
      worst = std::max(
          worst, message_time(bytes, first_cg + r - pow2, first_cg + r));
    }
    total += worst;
  }
  return total;
}

double Topology::broadcast_time(std::size_t bytes, std::size_t first_cg,
                                std::size_t count) const {
  SWHKM_REQUIRE(first_cg + count <= num_cgs(), "CG range out of machine");
  if (count <= 1) {
    return 0.0;
  }
  // Binomial tree from rank 0 of the range: stage s doubles the reached
  // prefix; stage cost is its worst link.
  double total = 0.0;
  for (std::size_t reached = 1; reached < count; reached *= 2) {
    double worst = 0.0;
    const std::size_t senders = std::min(reached, count - reached);
    for (std::size_t s = 0; s < senders; ++s) {
      worst = std::max(
          worst, message_time(bytes, first_cg + s, first_cg + s + reached));
    }
    total += worst;
  }
  return total;
}

double Topology::min_combine_time(std::size_t first_cg,
                                  std::size_t count) const {
  // (double, uint64) payload: 16 bytes — pure latency in practice.
  return allreduce_time(sizeof(double) + sizeof(std::uint64_t), first_cg,
                        count);
}

}  // namespace swhkm::simarch
