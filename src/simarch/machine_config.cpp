#include "simarch/machine_config.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace swhkm::simarch {

void MachineConfig::validate() const {
  SWHKM_REQUIRE(cpes_per_cg >= 1, "a CG needs at least one CPE");
  SWHKM_REQUIRE(mesh_rows * mesh_cols == cpes_per_cg,
                "mesh geometry must cover exactly the CPEs of a CG");
  SWHKM_REQUIRE(ldm_bytes >= 16, "LDM unrealistically small");
  SWHKM_REQUIRE(elem_bytes > 0 && ldm_bytes % elem_bytes == 0,
                "LDM must hold a whole number of elements");
  SWHKM_REQUIRE(cgs_per_node >= 1, "a node needs at least one CG");
  SWHKM_REQUIRE(nodes >= 1, "need at least one node");
  SWHKM_REQUIRE(supernode_nodes >= 1, "supernode must contain nodes");
  SWHKM_REQUIRE(dma_bandwidth > 0 && reg_bandwidth > 0 && net_bandwidth > 0 &&
                    inter_supernode_bandwidth > 0,
                "bandwidths must be positive");
  SWHKM_REQUIRE(cpe_clock_hz > 0 && cpe_flops_per_cycle > 0,
                "compute rates must be positive");
  SWHKM_REQUIRE(compute_efficiency > 0 && compute_efficiency <= 1.0,
                "efficiency must be in (0, 1]");
}

std::string MachineConfig::summary() const {
  std::ostringstream out;
  out << nodes << " node(s) x " << cgs_per_node << " CG x " << cpes_per_cg
      << " CPE (" << total_cpes() << " CPEs total), LDM "
      << util::format_bytes(ldm_bytes) << "/CPE, B=" << dma_bandwidth / 1e9
      << " GB/s, R=" << reg_bandwidth / 1e9 << " GB/s, M="
      << net_bandwidth / 1e9 << " GB/s, supernode=" << supernode_nodes
      << " nodes";
  return out.str();
}

std::size_t MachineConfig::collective_crossover_bytes() const {
  // Evaluate at the machine's own supernode count (at least 2: a machine
  // that never crosses supernodes still needs a finite threshold for the
  // runtime schedule it configures).
  const double supernodes =
      static_cast<double>(std::max<std::size_t>(2, num_supernodes()));
  const double lg = std::max(1.0, std::ceil(std::log2(supernodes)));
  const double frac = (supernodes - 1.0) / supernodes;
  const double crossover = lg * inter_supernode_latency *
                           inter_supernode_bandwidth / (lg - frac);
  return static_cast<std::size_t>(crossover);
}

MachineConfig MachineConfig::sw26010(std::size_t nodes) {
  MachineConfig config;
  config.nodes = nodes;
  config.validate();
  return config;
}

MachineConfig MachineConfig::tiny(std::size_t nodes, std::size_t cpes_per_cg,
                                  std::size_t ldm_bytes) {
  MachineConfig config;
  config.nodes = nodes;
  config.cpes_per_cg = cpes_per_cg;
  // Choose the most square mesh that covers cpes_per_cg exactly.
  std::size_t rows = 1;
  for (std::size_t r = 1; r * r <= cpes_per_cg; ++r) {
    if (cpes_per_cg % r == 0) {
      rows = r;
    }
  }
  config.mesh_rows = rows;
  config.mesh_cols = cpes_per_cg / rows;
  config.ldm_bytes = ldm_bytes;
  config.cgs_per_node = 2;
  config.supernode_nodes = 4;
  config.validate();
  return config;
}

}  // namespace swhkm::simarch
