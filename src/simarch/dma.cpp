#include "simarch/dma.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace swhkm::simarch {

void DmaEngine::get(std::span<float> dst, std::span<const float> src,
                    Purpose purpose) {
  SWHKM_REQUIRE(dst.size() == src.size(), "DMA get extents must match");
  std::copy(src.begin(), src.end(), dst.begin());
  charge(dst.size_bytes(), purpose);
}

void DmaEngine::put(std::span<float> dst, std::span<const float> src,
                    Purpose purpose) {
  SWHKM_REQUIRE(dst.size() == src.size(), "DMA put extents must match");
  std::copy(src.begin(), src.end(), dst.begin());
  charge(dst.size_bytes(), purpose);
}

void DmaEngine::account(std::size_t bytes, Purpose purpose) {
  charge(bytes, purpose);
}

void DmaEngine::charge(std::size_t bytes, Purpose purpose) {
  const double seconds = transfer_time(bytes);
  tally_->dma_bytes += bytes;
  switch (purpose) {
    case Purpose::kSampleRead:
      tally_->sample_read_s += seconds;
      break;
    case Purpose::kCentroidStream:
      tally_->centroid_stream_s += seconds;
      break;
    case Purpose::kWriteback:
      tally_->update_s += seconds;
      break;
  }
}

}  // namespace swhkm::simarch
