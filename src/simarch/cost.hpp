#pragma once

#include <cstdint>
#include <string>

namespace swhkm::simarch {

/// Simulated-time ledger for one iteration (or one run) of an engine.
/// Each component is the *critical-path* seconds attributed to that
/// activity; total() is their sum, i.e. the model assumes phases do not
/// overlap (the paper's formulas make the same assumption).
///
/// Byte/flop counters are bookkeeping totals across the whole machine and
/// exist for reporting and for tests that assert data-movement volumes.
struct CostTally {
  // seconds on the critical path
  double sample_read_s = 0;      ///< DMA of sample vectors into LDM
  double centroid_stream_s = 0;  ///< DMA (re-)streaming of centroid tiles
  double compute_s = 0;          ///< distance + accumulate arithmetic
  double mesh_comm_s = 0;        ///< intra-CG register communication
  double net_comm_s = 0;         ///< inter-CG / inter-node MPI traffic
  double update_s = 0;           ///< centroid recomputation after reduce

  // Seconds *hidden* by the double-buffered tile pipeline: DMA (sample /
  // centroid streaming) or per-tile combine traffic issued under the
  // previous tile's distance sweep. Already subtracted from the phase
  // fields above, so total_s() — still the plain sum of those fields —
  // reflects the shortened critical path; these ledgers only record how
  // much the overlap bought. Zero when KmeansConfig::pipeline_tiles is
  // off, which restores the strict no-overlap model.
  double overlapped_dma_s = 0;   ///< tile DMA hidden under compute
  double overlapped_net_s = 0;   ///< tile combine traffic hidden under compute

  // machine-wide volume counters
  std::uint64_t dma_bytes = 0;
  std::uint64_t reg_bytes = 0;
  std::uint64_t net_bytes = 0;
  std::uint64_t flops = 0;
  /// Samples the bound gate resolved without a distance sweep this
  /// iteration (0 when gating is off or on the exact first iteration).
  std::uint64_t pruned_samples = 0;
  /// Network collective *rounds* this rank entered (per-tile argmin
  /// combines plus the update phase's reduce_scatter + allgather). Rounds
  /// are the latency-side currency the s-step deferred reduction spends
  /// less of — bytes can stay constant while rounds drop by the fold
  /// factor. Combined across ranks as a max (concurrent groups' rounds
  /// overlap; the busiest rank is the critical path) and summed across
  /// iterations like the time fields.
  std::uint64_t net_rounds = 0;
  /// Of net_bytes, the bytes that crossed a supernode boundary (through
  /// the central routing switch) — the traffic the Fig. 7 step jumps are
  /// made of, and what the hierarchical collective schedule exists to
  /// shrink. A machine-wide volume counter: summed in both combines.
  std::uint64_t net_crossing_bytes = 0;
  /// GEMM assign panels the ABFT checksum column caught corrupt and
  /// recomputed bit-identically (KmeansConfig::sdc_checks). A machine-wide
  /// volume counter: summed in both combines, so per-rank detections reach
  /// the cg-0 history through the existing tally exchange.
  std::uint64_t sdc_recomputed = 0;

  double total_s() const {
    return sample_read_s + centroid_stream_s + compute_s + mesh_comm_s +
           net_comm_s + update_s;
  }

  CostTally& operator+=(const CostTally& other) {
    sample_read_s += other.sample_read_s;
    centroid_stream_s += other.centroid_stream_s;
    compute_s += other.compute_s;
    mesh_comm_s += other.mesh_comm_s;
    net_comm_s += other.net_comm_s;
    update_s += other.update_s;
    overlapped_dma_s += other.overlapped_dma_s;
    overlapped_net_s += other.overlapped_net_s;
    dma_bytes += other.dma_bytes;
    reg_bytes += other.reg_bytes;
    net_bytes += other.net_bytes;
    flops += other.flops;
    pruned_samples += other.pruned_samples;
    net_rounds += other.net_rounds;
    net_crossing_bytes += other.net_crossing_bytes;
    sdc_recomputed += other.sdc_recomputed;
    return *this;
  }

  /// Component-wise maximum of the time fields; used when parallel branches
  /// of the machine execute the same phase and the slowest one gates the
  /// iteration. Volume counters are summed.
  CostTally& max_in_place(const CostTally& other) {
    sample_read_s = sample_read_s > other.sample_read_s ? sample_read_s
                                                        : other.sample_read_s;
    centroid_stream_s = centroid_stream_s > other.centroid_stream_s
                            ? centroid_stream_s
                            : other.centroid_stream_s;
    compute_s = compute_s > other.compute_s ? compute_s : other.compute_s;
    mesh_comm_s =
        mesh_comm_s > other.mesh_comm_s ? mesh_comm_s : other.mesh_comm_s;
    net_comm_s = net_comm_s > other.net_comm_s ? net_comm_s : other.net_comm_s;
    update_s = update_s > other.update_s ? update_s : other.update_s;
    overlapped_dma_s = overlapped_dma_s > other.overlapped_dma_s
                           ? overlapped_dma_s
                           : other.overlapped_dma_s;
    overlapped_net_s = overlapped_net_s > other.overlapped_net_s
                           ? overlapped_net_s
                           : other.overlapped_net_s;
    dma_bytes += other.dma_bytes;
    reg_bytes += other.reg_bytes;
    net_bytes += other.net_bytes;
    flops += other.flops;
    pruned_samples += other.pruned_samples;
    net_crossing_bytes += other.net_crossing_bytes;
    sdc_recomputed += other.sdc_recomputed;
    net_rounds =
        net_rounds > other.net_rounds ? net_rounds : other.net_rounds;
    return *this;
  }

  std::string summary() const;
};

}  // namespace swhkm::simarch
