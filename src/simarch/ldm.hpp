#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace swhkm::simarch {

/// Simulated Local Directive Memory (scratchpad) of one CPE.
///
/// The real SW26010 gives each CPE 64 KiB of software-managed memory and no
/// data cache: anything a kernel touches must have been explicitly placed.
/// The engines in core/ allocate every LDM-resident buffer through this
/// class, so exceeding the paper's constraints (C1..C3'') is a hard runtime
/// error (CapacityError) rather than a silent fiction.
///
/// Allocation is a bump pointer with named blocks; free() only releases the
/// most recent block(s) (stack discipline), which matches how scratchpad
/// kernels are actually written and keeps the model trivially correct.
class LdmAllocator {
 public:
  explicit LdmAllocator(std::size_t capacity_bytes);

  /// Reserve `bytes` under `name`. Throws CapacityError when the scratchpad
  /// would overflow; the message names every live block to make planner
  /// bugs diagnosable.
  void alloc(const std::string& name, std::size_t bytes);

  /// Release the most recent allocation; it must be named `name`
  /// (stack discipline guard). Throws RuntimeFault on mismatch.
  void free(const std::string& name);

  /// Release everything.
  void reset();

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  std::size_t remaining() const { return capacity_ - used_; }
  std::size_t high_water() const { return high_water_; }
  std::size_t live_blocks() const { return blocks_.size(); }

  /// Human-readable listing of live blocks, for diagnostics.
  std::string layout() const;

 private:
  struct Block {
    std::string name;
    std::size_t bytes;
  };

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::vector<Block> blocks_;
};

/// RAII helper: allocates on construction, frees on destruction. Use for
/// per-phase buffers inside engine loops.
class LdmBlock {
 public:
  LdmBlock(LdmAllocator& ldm, std::string name, std::size_t bytes)
      : ldm_(ldm), name_(std::move(name)) {
    ldm_.alloc(name_, bytes);
  }
  LdmBlock(const LdmBlock&) = delete;
  LdmBlock& operator=(const LdmBlock&) = delete;
  ~LdmBlock() { ldm_.free(name_); }

 private:
  LdmAllocator& ldm_;
  std::string name_;
};

}  // namespace swhkm::simarch
