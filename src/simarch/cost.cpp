#include "simarch/cost.hpp"

#include <sstream>

#include "util/units.hpp"

namespace swhkm::simarch {

std::string CostTally::summary() const {
  std::ostringstream out;
  out << "total " << util::format_seconds(total_s()) << " (read "
      << util::format_seconds(sample_read_s) << ", stream "
      << util::format_seconds(centroid_stream_s) << ", compute "
      << util::format_seconds(compute_s) << ", mesh "
      << util::format_seconds(mesh_comm_s) << ", net "
      << util::format_seconds(net_comm_s) << ", update "
      << util::format_seconds(update_s) << ")";
  if (overlapped_dma_s + overlapped_net_s > 0) {
    out << "; overlap hid "
        << util::format_seconds(overlapped_dma_s + overlapped_net_s)
        << " (dma " << util::format_seconds(overlapped_dma_s) << ", net "
        << util::format_seconds(overlapped_net_s) << ")";
  }
  out << "; volumes: dma " << util::format_bytes(dma_bytes) << ", reg "
      << util::format_bytes(reg_bytes) << ", net "
      << util::format_bytes(net_bytes) << ", flops "
      << util::format_count(flops);
  if (pruned_samples > 0) {
    out << ", pruned " << util::format_count(pruned_samples);
  }
  if (net_rounds > 0) {
    out << ", rounds " << util::format_count(net_rounds);
  }
  if (net_crossing_bytes > 0) {
    out << ", crossing " << util::format_bytes(net_crossing_bytes);
  }
  return out.str();
}

}  // namespace swhkm::simarch
