#pragma once

#include <cstddef>
#include <vector>

#include "simarch/machine_config.hpp"

namespace swhkm::simarch {

/// TaihuLight interconnect model: CGs sit on nodes (4 per SW26010
/// processor), nodes sit on supernodes (256 per interconnection board), and
/// supernodes meet at the central routing switch. Link quality degrades in
/// three steps: same node (shared memory) > same supernode (board network)
/// > cross supernode (central switch).
///
/// Ranks in this class are CG indices; placement is contiguous: CG r lives
/// on node r / cgs_per_node. The paper's placement advice ("make a CG group
/// located within a super-node if possible") is modelled by choosing which
/// contiguous CG ranges a plan assigns to a group.
class Topology {
 public:
  explicit Topology(const MachineConfig& config);

  std::size_t num_cgs() const { return config_->num_cgs(); }
  std::size_t node_of_cg(std::size_t cg) const {
    return cg / config_->cgs_per_node;
  }
  std::size_t supernode_of_node(std::size_t node) const {
    return node / config_->supernode_nodes;
  }
  std::size_t supernode_of_cg(std::size_t cg) const {
    return supernode_of_node(node_of_cg(cg));
  }
  bool same_node(std::size_t cg_a, std::size_t cg_b) const {
    return node_of_cg(cg_a) == node_of_cg(cg_b);
  }
  bool same_supernode(std::size_t cg_a, std::size_t cg_b) const {
    return supernode_of_cg(cg_a) == supernode_of_cg(cg_b);
  }

  /// Seconds for one point-to-point message of `bytes` between two CGs.
  double message_time(std::size_t bytes, std::size_t cg_a,
                      std::size_t cg_b) const;

  /// Seconds for a sum-AllReduce of `bytes` payload over the contiguous CG
  /// range [first_cg, first_cg + count). Modelled as recursive doubling:
  /// ceil(log2(count)) stages, each stage exchanging the full payload with
  /// a partner 2^s ranks away; a stage costs what its slowest pair costs.
  /// Crossing node and supernode boundaries at the large-stride stages is
  /// what produces the boundary effects the paper observes in Fig. 7.
  double allreduce_time(std::size_t bytes, std::size_t first_cg,
                        std::size_t count) const;

  /// Same, over an arbitrary set of CG ranks (e.g. the stride-m'_group
  /// same-slice CGs that combine accumulators in Level 3).
  double allreduce_time(std::size_t bytes,
                        const std::vector<std::size_t>& cgs) const;

  /// Seconds for a sum-reduce_scatter of `bytes` payload over the range:
  /// recursive halving, each stage exchanging half the surviving payload
  /// with a partner 2^s ranks away; non-powers of two pay an extra fold-in
  /// exchange of the full payload. This is the first half of the sharded
  /// update phase (each CG ends up owning its shard of the sums).
  double reduce_scatter_time(std::size_t bytes, std::size_t first_cg,
                             std::size_t count) const;

  /// Seconds for an allgather assembling `bytes` total payload over the
  /// range: recursive doubling, stage payloads growing from one shard to
  /// half the total; non-powers of two pay an extra full-payload fold-out.
  /// This is the second half of the sharded update phase (publishing the
  /// refreshed centroid rows).
  double allgather_time(std::size_t bytes, std::size_t first_cg,
                        std::size_t count) const;

  /// Seconds for a one-to-all broadcast over the same range (binomial tree;
  /// log2(count) stages of the full payload).
  double broadcast_time(std::size_t bytes, std::size_t first_cg,
                        std::size_t count) const;

  /// Seconds for an argmin-style combine of a tiny (value,index) payload
  /// over the range — latency dominated; used per-sample by Level 3.
  double min_combine_time(std::size_t first_cg, std::size_t count) const;

 private:
  const MachineConfig* config_;
};

}  // namespace swhkm::simarch
