#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simarch/machine_config.hpp"

namespace swhkm::simarch {

/// Which schedule a modeled collective charged: the flat whole-world
/// pattern (used whenever the rank set sits inside one supernode — the
/// hierarchy degenerates and the charge must match the original model
/// exactly), or one of the two inter-supernode algorithms of the
/// hierarchical schedule.
enum class CollectiveAlgo {
  kFlat,
  kBinomialTree,            ///< latency-optimal inter stage (tiny payloads)
  kReduceScatterAllgather,  ///< bandwidth-optimal inter stage (large payloads)
};

const char* to_string(CollectiveAlgo algo);

/// One modeled hierarchical collective: critical-path seconds, the bytes
/// that crossed supernode boundaries (central-switch traffic — what the
/// Fig. 7 step jumps are made of), and the per-stage round counts, so the
/// engines can charge CostTally::net_crossing_bytes and export the
/// schedule through telemetry.
struct CollectiveCharge {
  double seconds = 0;
  std::uint64_t crossing_bytes = 0;
  std::uint32_t intra_rounds = 0;  ///< stages inside supernodes
  std::uint32_t inter_rounds = 0;  ///< stages among supernode leaders
  CollectiveAlgo algo = CollectiveAlgo::kFlat;
};

/// TaihuLight interconnect model: CGs sit on nodes (4 per SW26010
/// processor), nodes sit on supernodes (256 per interconnection board), and
/// supernodes meet at the central routing switch. Link quality degrades in
/// three steps: same node (shared memory) > same supernode (board network)
/// > cross supernode (central switch).
///
/// Ranks in this class are CG indices; placement is contiguous: CG r lives
/// on node r / cgs_per_node. The paper's placement advice ("make a CG group
/// located within a super-node if possible") is modelled by choosing which
/// contiguous CG ranges a plan assigns to a group.
class Topology {
 public:
  explicit Topology(const MachineConfig& config);

  std::size_t num_cgs() const { return config_->num_cgs(); }
  std::size_t node_of_cg(std::size_t cg) const {
    return cg / config_->cgs_per_node;
  }
  std::size_t supernode_of_node(std::size_t node) const {
    return node / config_->supernode_nodes;
  }
  std::size_t supernode_of_cg(std::size_t cg) const {
    return supernode_of_node(node_of_cg(cg));
  }
  bool same_node(std::size_t cg_a, std::size_t cg_b) const {
    return node_of_cg(cg_a) == node_of_cg(cg_b);
  }
  bool same_supernode(std::size_t cg_a, std::size_t cg_b) const {
    return supernode_of_cg(cg_a) == supernode_of_cg(cg_b);
  }

  /// Seconds for one point-to-point message of `bytes` between two CGs.
  double message_time(std::size_t bytes, std::size_t cg_a,
                      std::size_t cg_b) const;

  /// Seconds for a sum-AllReduce of `bytes` payload over the contiguous CG
  /// range [first_cg, first_cg + count). Modelled as recursive doubling:
  /// ceil(log2(count)) stages, each stage exchanging the full payload with
  /// a partner 2^s ranks away; a stage costs what its slowest pair costs.
  /// Crossing node and supernode boundaries at the large-stride stages is
  /// what produces the boundary effects the paper observes in Fig. 7.
  double allreduce_time(std::size_t bytes, std::size_t first_cg,
                        std::size_t count) const;

  /// Same, over an arbitrary set of CG ranks (e.g. the stride-m'_group
  /// same-slice CGs that combine accumulators in Level 3).
  double allreduce_time(std::size_t bytes,
                        const std::vector<std::size_t>& cgs) const;

  /// Seconds for a sum-reduce_scatter of `bytes` payload over the range:
  /// recursive halving, each stage exchanging half the surviving payload
  /// with a partner 2^s ranks away; non-powers of two pay an extra fold-in
  /// exchange of the full payload. This is the first half of the sharded
  /// update phase (each CG ends up owning its shard of the sums).
  double reduce_scatter_time(std::size_t bytes, std::size_t first_cg,
                             std::size_t count) const;

  /// Seconds for an allgather assembling `bytes` total payload over the
  /// range: recursive doubling, stage payloads growing from one shard to
  /// half the total; non-powers of two pay an extra full-payload fold-out.
  /// This is the second half of the sharded update phase (publishing the
  /// refreshed centroid rows).
  double allgather_time(std::size_t bytes, std::size_t first_cg,
                        std::size_t count) const;

  /// Seconds for a one-to-all broadcast over the same range (binomial tree;
  /// log2(count) stages of the full payload).
  double broadcast_time(std::size_t bytes, std::size_t first_cg,
                        std::size_t count) const;

  /// Seconds for an argmin-style combine of a tiny (value,index) payload
  /// over the range — latency dominated; used per-sample by Level 3.
  double min_combine_time(std::size_t first_cg, std::size_t count) const;

  /// Two-level allreduce charge over the rank set: binomial fold inside
  /// each supernode's segment, a size-adaptive stage among the supernode
  /// leaders (binomial tree at or below `crossover_bytes`, recursive
  /// halving + doubling above it), and the fan back out. When the set
  /// spans a single supernode the charge is *exactly* the flat
  /// allreduce_time with zero crossing bytes — the hierarchy degenerates,
  /// so sub-supernode machines are unaffected by the schedule. Crossing
  /// bytes are 2*(S-1)*payload for S supernodes regardless of the inter
  /// algorithm (the algorithm trades stage latency against stage
  /// bandwidth; the hierarchy itself is what removes the flat schedule's
  /// every-rank-crosses-per-stage traffic).
  CollectiveCharge hier_allreduce_charge(std::size_t bytes,
                                         std::size_t first_cg,
                                         std::size_t count,
                                         std::size_t crossover_bytes) const;
  CollectiveCharge hier_allreduce_charge(std::size_t bytes,
                                         const std::vector<std::size_t>& cgs,
                                         std::size_t crossover_bytes) const;

  /// Two-level reduce_scatter charge: intra-segment recursive halving,
  /// then the leaders combine across supernodes (halving above the
  /// crossover, tree + range scatter below it). Flat when S == 1.
  CollectiveCharge hier_reduce_scatter_charge(
      std::size_t bytes, std::size_t first_cg, std::size_t count,
      std::size_t crossover_bytes) const;

  /// Two-level allgather charge: each segment assembles its block, the
  /// leaders exchange blocks by recursive doubling (concatenation has no
  /// reduction op, so the bandwidth schedule is always right), and the
  /// assembled payload fans back out. Flat when S == 1.
  CollectiveCharge hier_allgather_charge(std::size_t bytes,
                                         std::size_t first_cg,
                                         std::size_t count) const;

  /// Supernode-crossing bytes the *flat* recursive-doubling allreduce
  /// moves over the same rank set — the A/B baseline the bench cells
  /// compare the hierarchical schedule's crossing_bytes against. Every
  /// rank exchanges the full payload at every stage, so stages whose
  /// stride jumps a supernode put the whole world's payload through the
  /// central switch at once.
  std::uint64_t flat_allreduce_crossing_bytes(std::size_t bytes,
                                              std::size_t first_cg,
                                              std::size_t count) const;
  std::uint64_t flat_allreduce_crossing_bytes(
      std::size_t bytes, const std::vector<std::size_t>& cgs) const;

 private:
  /// Partition a rank list into per-supernode segments (first-appearance
  /// order; contiguous ranges yield contiguous segments).
  std::vector<std::vector<std::size_t>> segments_by_supernode(
      const std::vector<std::size_t>& cgs) const;
  /// Stage-time helpers over arbitrary rank lists, mirroring the
  /// contiguous-range collectives above: binomial tree (broadcast/reduce
  /// shape), recursive halving (reduce_scatter shape) and recursive
  /// doubling (allgather shape).
  double binomial_tree_time(std::size_t bytes,
                            const std::vector<std::size_t>& cgs) const;
  double halving_time(std::size_t bytes,
                      const std::vector<std::size_t>& cgs) const;
  double doubling_time(std::size_t bytes,
                       const std::vector<std::size_t>& cgs) const;

  const MachineConfig* config_;
};

}  // namespace swhkm::simarch
