#pragma once

#include <cstddef>
#include <span>

#include "simarch/cost.hpp"
#include "simarch/machine_config.hpp"

namespace swhkm::simarch {

/// Simulated DMA channel of one core group: moves data between main memory
/// and CPE scratchpads, charging simulated time to a CostTally.
///
/// Functional `get`/`put` both copy bytes and account them; `account` only
/// charges time (used when the data is already where C++ can reach it but
/// the real machine would have had to move it — e.g. re-streaming a
/// centroid tile that the functional engine keeps in one address space).
class DmaEngine {
 public:
  /// What the transfer is for — selects the CostTally bucket so benches can
  /// report sample-read vs centroid-stream volume separately.
  enum class Purpose { kSampleRead, kCentroidStream, kWriteback };

  DmaEngine(const MachineConfig& config, CostTally& tally)
      : config_(&config), tally_(&tally) {}

  /// Main memory -> LDM. dst and src must have equal extents.
  void get(std::span<float> dst, std::span<const float> src, Purpose purpose);

  /// LDM -> main memory.
  void put(std::span<float> dst, std::span<const float> src, Purpose purpose);

  /// Charge time/volume for `bytes` without copying.
  void account(std::size_t bytes, Purpose purpose);

  /// Model: seconds for one transfer of `bytes` (latency + bandwidth).
  double transfer_time(std::size_t bytes) const {
    return config_->dma_latency +
           static_cast<double>(bytes) / config_->dma_bandwidth;
  }

 private:
  void charge(std::size_t bytes, Purpose purpose);

  const MachineConfig* config_;
  CostTally* tally_;
};

}  // namespace swhkm::simarch
