#pragma once

#include <fstream>
#include <functional>
#include <string>

#include "data/dataset.hpp"

namespace swhkm::data {

/// Chunked reader for SWKM binary datasets (the save_binary format) that
/// never materialises the full sample matrix — the Table II shapes at
/// full size are disk-resident by necessity (the paper's n·d reaches
/// 1 PB), and the paper's own engines stream from node memory the same
/// way.
class BinaryDatasetReader {
 public:
  explicit BinaryDatasetReader(const std::string& path);

  std::size_t n() const { return n_; }
  std::size_t d() const { return d_; }
  const std::string& path() const { return path_; }

  /// Visit the dataset in row chunks of at most `chunk_rows`. The callback
  /// receives the chunk (row-major, chunk.rows() <= chunk_rows) and the
  /// global index of its first row. Always iterates front to back.
  void for_each_chunk(
      std::size_t chunk_rows,
      const std::function<void(const util::Matrix& chunk,
                               std::size_t first_row)>& visit) const;

  /// Read one specific row range [first, first+count) into a matrix.
  util::Matrix read_rows(std::size_t first, std::size_t count) const;

 private:
  std::string path_;
  std::size_t n_ = 0;
  std::size_t d_ = 0;
  std::streamoff payload_offset_ = 0;
};

}  // namespace swhkm::data
