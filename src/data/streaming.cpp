#include "data/streaming.hpp"

#include <cstring>

#include "util/error.hpp"

namespace swhkm::data {

namespace {
// Mirrors io.cpp's SWKM header (kept private there; duplicated structure
// is pinned by the shared magic/version checks in tests).
struct Header {
  char magic[4];
  std::uint32_t version;
  std::uint64_t n;
  std::uint64_t d;
};
static_assert(sizeof(Header) == 24);
}  // namespace

BinaryDatasetReader::BinaryDatasetReader(const std::string& path)
    : path_(path) {
  std::ifstream file(path, std::ios::binary);
  SWHKM_REQUIRE(static_cast<bool>(file), "cannot open " + path + " to read");
  Header header{};
  file.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!file || std::memcmp(header.magic, "SWKM", 4) != 0) {
    throw InvalidArgument(path + " is not a SWKM dataset");
  }
  if (header.version != 1) {
    throw InvalidArgument(path + " has unsupported SWKM version");
  }
  file.seekg(0, std::ios::end);
  const std::uint64_t payload =
      static_cast<std::uint64_t>(file.tellg()) - sizeof(Header);
  if (header.d == 0 || header.n > payload / sizeof(float) / header.d) {
    throw InvalidArgument(path + " declares a shape larger than the file");
  }
  n_ = header.n;
  d_ = header.d;
  payload_offset_ = sizeof(Header);
}

util::Matrix BinaryDatasetReader::read_rows(std::size_t first,
                                            std::size_t count) const {
  SWHKM_REQUIRE(first + count <= n_, "row range out of dataset");
  std::ifstream file(path_, std::ios::binary);
  SWHKM_REQUIRE(static_cast<bool>(file), "cannot open " + path_);
  util::Matrix chunk(count, d_);
  file.seekg(payload_offset_ +
             static_cast<std::streamoff>(first * d_ * sizeof(float)));
  file.read(reinterpret_cast<char*>(chunk.data()),
            static_cast<std::streamsize>(count * d_ * sizeof(float)));
  if (!file) {
    throw InvalidArgument(path_ + " is truncated");
  }
  return chunk;
}

void BinaryDatasetReader::for_each_chunk(
    std::size_t chunk_rows,
    const std::function<void(const util::Matrix&, std::size_t)>& visit)
    const {
  SWHKM_REQUIRE(chunk_rows > 0, "chunk_rows must be positive");
  std::ifstream file(path_, std::ios::binary);
  SWHKM_REQUIRE(static_cast<bool>(file), "cannot open " + path_);
  file.seekg(payload_offset_);
  for (std::size_t first = 0; first < n_; first += chunk_rows) {
    const std::size_t rows = std::min(chunk_rows, n_ - first);
    util::Matrix chunk(rows, d_);
    file.read(reinterpret_cast<char*>(chunk.data()),
              static_cast<std::streamsize>(rows * d_ * sizeof(float)));
    if (!file) {
      throw InvalidArgument(path_ + " is truncated");
    }
    visit(chunk, first);
  }
}

}  // namespace swhkm::data
