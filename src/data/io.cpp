#include "data/io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.hpp"
#include "util/fileio.hpp"

namespace swhkm::data {

namespace {
constexpr char kMagic[4] = {'S', 'W', 'K', 'M'};
constexpr std::uint32_t kVersion = 1;

struct Header {
  char magic[4];
  std::uint32_t version;
  std::uint64_t n;
  std::uint64_t d;
};
static_assert(sizeof(Header) == 24);
}  // namespace

void save_binary(const Dataset& dataset, const std::string& path) {
  Header header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.n = dataset.n();
  header.d = dataset.d();
  // Temp-file + fsync + rename: readers never observe a half-written
  // dataset, even if the writer dies mid-stream.
  util::write_file_atomic(path, std::ios::binary, [&](std::ofstream& file) {
    file.write(reinterpret_cast<const char*>(&header), sizeof(header));
    const auto flat = dataset.samples().flat();
    file.write(reinterpret_cast<const char*>(flat.data()),
               static_cast<std::streamsize>(flat.size_bytes()));
  });
}

Dataset load_binary(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  SWHKM_REQUIRE(static_cast<bool>(file), "cannot open " + path + " to read");
  Header header{};
  file.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!file || std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    throw InvalidArgument(path + " is not a SWKM dataset");
  }
  if (header.version != kVersion) {
    throw InvalidArgument(path + " has unsupported SWKM version " +
                          std::to_string(header.version));
  }
  // Validate the declared shape against the real file size before
  // allocating — a corrupted header must not trigger a huge allocation.
  file.seekg(0, std::ios::end);
  const std::uint64_t payload =
      static_cast<std::uint64_t>(file.tellg()) - sizeof(Header);
  file.seekg(sizeof(Header), std::ios::beg);
  if (header.d == 0 || header.n > payload / sizeof(float) / header.d) {
    throw InvalidArgument(path + " declares a shape larger than the file");
  }
  util::Matrix samples(header.n, header.d);
  const auto flat = samples.flat();
  file.read(reinterpret_cast<char*>(flat.data()),
            static_cast<std::streamsize>(flat.size_bytes()));
  if (!file) {
    throw InvalidArgument(path + " is truncated");
  }
  return Dataset(path, std::move(samples));
}

void save_csv(const Dataset& dataset, const std::string& path) {
  util::write_file_atomic(path, std::ios::openmode{}, [&](std::ofstream& file) {
    for (std::size_t i = 0; i < dataset.n(); ++i) {
      const auto row = dataset.sample(i);
      for (std::size_t u = 0; u < row.size(); ++u) {
        if (u != 0) {
          file << ',';
        }
        file << row[u];
      }
      file << '\n';
    }
  });
}

Dataset load_csv(const std::string& path, const std::string& name) {
  std::ifstream file(path);
  SWHKM_REQUIRE(static_cast<bool>(file), "cannot open " + path + " to read");
  std::vector<float> values;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty()) {
      continue;
    }
    std::size_t row_cols = 0;
    std::istringstream fields(line);
    std::string field;
    while (std::getline(fields, field, ',')) {
      try {
        values.push_back(std::stof(field));
      } catch (const std::exception&) {
        throw InvalidArgument(path + ": bad float '" + field + "' at row " +
                              std::to_string(rows));
      }
      ++row_cols;
    }
    if (rows == 0) {
      cols = row_cols;
    } else if (row_cols != cols) {
      throw InvalidArgument(path + ": row " + std::to_string(rows) + " has " +
                            std::to_string(row_cols) + " fields, expected " +
                            std::to_string(cols));
    }
    ++rows;
  }
  SWHKM_REQUIRE(rows > 0, path + " contains no data");
  return Dataset(name,
                 util::Matrix::from_vector(rows, cols, std::move(values)));
}

}  // namespace swhkm::data
