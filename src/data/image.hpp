#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace swhkm::data {

/// 8-bit RGB raster — enough image machinery for the paper's land-cover
/// classification application (Fig. 10) without an imaging dependency.
class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height)
      : width_(width), height_(height), pixels_(width * height * 3, 0) {}

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  bool empty() const { return pixels_.empty(); }

  std::uint8_t* pixel(std::size_t x, std::size_t y) {
    return &pixels_[(y * width_ + x) * 3];
  }
  const std::uint8_t* pixel(std::size_t x, std::size_t y) const {
    return &pixels_[(y * width_ + x) * 3];
  }

  void set_pixel(std::size_t x, std::size_t y, std::uint8_t r, std::uint8_t g,
                 std::uint8_t b) {
    std::uint8_t* p = pixel(x, y);
    p[0] = r;
    p[1] = g;
    p[2] = b;
  }

  const std::vector<std::uint8_t>& raw() const { return pixels_; }

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

/// Binary PPM (P6) round-trip.
void save_ppm(const Image& image, const std::string& path);
Image load_ppm(const std::string& path);

/// Deep-Globe-flavoured synthetic scene: smooth "terrain" fields partition
/// the frame into the paper's seven land classes (urban, agriculture,
/// rangeland, forest, water, barren, unknown), each rendered with its own
/// spectral signature plus speckle noise.
Image make_land_cover_scene(std::size_t width, std::size_t height,
                            std::uint64_t seed);

/// Slice an image into patch feature vectors: every `stride` pixels a
/// patch of side*side*3 values (row-major, RGB interleaved, cast to float).
/// This is how the paper turns a 2k x 2k scene into n samples with d=4096
/// (patch side 37 rounded... we expose side directly).
Dataset extract_patches(const Image& image, std::size_t side,
                        std::size_t stride);

/// Paint per-patch labels back over the image geometry (each patch's area
/// gets its cluster's colour) — the right-hand panel of Fig. 10.
Image render_patch_labels(std::size_t image_width, std::size_t image_height,
                          std::size_t side, std::size_t stride,
                          const std::vector<std::uint32_t>& labels,
                          std::size_t num_classes);

/// The 7-class palette used for Fig. 10 (Deep Globe colour convention).
std::array<std::array<std::uint8_t, 3>, 7> land_cover_palette();

}  // namespace swhkm::data
