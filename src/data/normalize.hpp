#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace swhkm::data {

/// Per-dimension affine transform x' = (x - offset) * scale, remembered so
/// centroids can be mapped back to raw feature space. k-means on mixed-
/// unit data (e.g. the census surrogate's categorical codes next to the
/// road network's latitudes) is meaningless without this.
struct ScalingParams {
  std::vector<double> offset;
  std::vector<double> scale;

  bool empty() const { return offset.empty(); }
};

/// Scale every dimension to [0, 1] in place (constant dimensions map to
/// 0). Returns the parameters for inversion.
ScalingParams minmax_scale(Dataset& dataset);

/// Standardise every dimension to mean 0, stddev 1 in place (constant
/// dimensions map to 0).
ScalingParams zscore_scale(Dataset& dataset);

/// Apply previously computed parameters to another matrix with the same
/// dimensionality (e.g. scale a query set like the training set).
void apply_scaling(const ScalingParams& params, util::Matrix& matrix);

/// Map scaled-space rows (e.g. fitted centroids) back to raw feature
/// space in place.
void invert_scaling(const ScalingParams& params, util::Matrix& matrix);

}  // namespace swhkm::data
