#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace swhkm::data {

namespace {
using util::Matrix;
using util::Xoshiro256;
}  // namespace

DatasetInfo benchmark_info(Benchmark which) {
  switch (which) {
    case Benchmark::kKeggNetwork:
      return {"Kegg Network", 65554, 28, 256};
    case Benchmark::kRoadNetwork:
      return {"Road Network", 434874, 4, 10000};
    case Benchmark::kUsCensus1990:
      return {"US Census 1990", 2458285, 68, 10000};
    case Benchmark::kIlsvrc2012:
      return {"ILSVRC2012 (ImgNet)", 1265723, 196608, 160000};
  }
  throw InvalidArgument("unknown benchmark");
}

std::vector<DatasetInfo> paper_benchmarks() {
  return {benchmark_info(Benchmark::kKeggNetwork),
          benchmark_info(Benchmark::kRoadNetwork),
          benchmark_info(Benchmark::kUsCensus1990),
          benchmark_info(Benchmark::kIlsvrc2012)};
}

Dataset make_blobs(std::size_t n, std::size_t d, std::size_t k_true,
                   std::uint64_t seed, double separation, double spread) {
  SWHKM_REQUIRE(n > 0 && d > 0 && k_true > 0, "blobs need n, d, k_true > 0");
  Xoshiro256 rng(seed);
  // Cluster centres on a scaled random lattice so that pairwise distances
  // are at least ~separation even in low dimensions.
  Matrix centres(k_true, d);
  for (std::size_t j = 0; j < k_true; ++j) {
    for (std::size_t u = 0; u < d; ++u) {
      centres.at(j, u) = static_cast<float>(
          separation * (rng.below(64) + 0.5) +
          (u % k_true == j % k_true ? separation * 4.0 : 0.0));
    }
  }
  Matrix samples(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i % k_true;  // balanced memberships
    for (std::size_t u = 0; u < d; ++u) {
      samples.at(i, u) = centres.at(j, u) +
                         static_cast<float>(spread * rng.normal());
    }
  }
  return Dataset("blobs", std::move(samples));
}

Dataset make_uniform(std::size_t n, std::size_t d, std::uint64_t seed,
                     float lo, float hi) {
  SWHKM_REQUIRE(n > 0 && d > 0, "uniform needs n, d > 0");
  SWHKM_REQUIRE(lo < hi, "uniform needs lo < hi");
  Xoshiro256 rng(seed);
  Matrix samples(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t u = 0; u < d; ++u) {
      samples.at(i, u) = static_cast<float>(rng.uniform(lo, hi));
    }
  }
  return Dataset("uniform", std::move(samples));
}

Dataset make_kegg_like(std::size_t n, std::uint64_t seed) {
  constexpr std::size_t kDims = 28;
  Xoshiro256 rng(seed);
  Matrix samples(n, kDims);
  for (std::size_t i = 0; i < n; ++i) {
    // Pathways differ in overall scale (hub vs leaf metabolites).
    const double scale = std::exp(rng.normal() * 0.8);
    for (std::size_t u = 0; u < kDims; ++u) {
      const double value = scale * std::exp(rng.normal() * 0.5 +
                                            0.05 * static_cast<double>(u));
      samples.at(i, u) = static_cast<float>(value);
    }
  }
  return Dataset("kegg-like", std::move(samples));
}

Dataset make_road_like(std::size_t n, std::uint64_t seed) {
  constexpr std::size_t kDims = 4;
  constexpr std::size_t kRoads = 48;
  Xoshiro256 rng(seed);
  // Roads are random line segments in a lat/lon box (Jutland-ish extent,
  // matching the original 3D road network data's geography).
  struct Segment {
    double lat0, lon0, lat1, lon1;
  };
  std::vector<Segment> roads(kRoads);
  for (auto& road : roads) {
    road.lat0 = rng.uniform(56.5, 57.8);
    road.lon0 = rng.uniform(8.1, 11.2);
    road.lat1 = road.lat0 + rng.uniform(-0.4, 0.4);
    road.lon1 = road.lon0 + rng.uniform(-0.4, 0.4);
  }
  Matrix samples(n, kDims);
  for (std::size_t i = 0; i < n; ++i) {
    const Segment& road = roads[rng.below(kRoads)];
    const double t = rng.uniform();
    const double lat = road.lat0 + t * (road.lat1 - road.lat0);
    const double lon = road.lon0 + t * (road.lon1 - road.lon0);
    samples.at(i, 0) = static_cast<float>(lat + rng.normal() * 1e-3);
    samples.at(i, 1) = static_cast<float>(lon + rng.normal() * 1e-3);
    // altitude correlates with latitude; gradient with segment direction
    samples.at(i, 2) = static_cast<float>(20.0 + 8.0 * (lat - 56.5) +
                                          rng.normal() * 0.5);
    samples.at(i, 3) = static_cast<float>(rng.normal() * 0.05);
  }
  return Dataset("road-like", std::move(samples));
}

Dataset make_census_like(std::size_t n, std::uint64_t seed) {
  constexpr std::size_t kDims = 68;
  Xoshiro256 rng(seed);
  Matrix samples(n, kDims);
  for (std::size_t i = 0; i < n; ++i) {
    // Correlated blocks: a latent "household type" shifts a block of
    // categorical codes together, like the real PUMS extract.
    const std::uint64_t household = rng.below(12);
    for (std::size_t u = 0; u < kDims; ++u) {
      const std::uint64_t cardinality = 2 + (u * 7) % 15;
      std::uint64_t code = rng.below(cardinality);
      if (u % 4 == 0) {
        code = (code + household) % cardinality;
      }
      samples.at(i, u) = static_cast<float>(code);
    }
  }
  return Dataset("census-like", std::move(samples));
}

Dataset make_ilsvrc_like(std::size_t n, std::size_t side, std::uint64_t seed) {
  SWHKM_REQUIRE(side > 0, "image side must be positive");
  const std::size_t d = side * side * 3;
  Xoshiro256 rng(seed);
  Matrix samples(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    // Low-frequency content: a random 2D gradient plus per-channel offset,
    // with pixel noise on top — the covariance structure of natural image
    // thumbnails without shipping ImageNet.
    const double gx = rng.uniform(-1.0, 1.0);
    const double gy = rng.uniform(-1.0, 1.0);
    const double base[3] = {rng.uniform(40, 215), rng.uniform(40, 215),
                            rng.uniform(40, 215)};
    for (std::size_t y = 0; y < side; ++y) {
      for (std::size_t x = 0; x < side; ++x) {
        for (std::size_t c = 0; c < 3; ++c) {
          const double value =
              base[c] +
              40.0 * (gx * (static_cast<double>(x) / side - 0.5) +
                      gy * (static_cast<double>(y) / side - 0.5)) +
              6.0 * rng.normal();
          samples.at(i, (y * side + x) * 3 + c) =
              static_cast<float>(std::clamp(value, 0.0, 255.0));
        }
      }
    }
  }
  return Dataset("ilsvrc-like", std::move(samples));
}

Dataset make_benchmark_surrogate(Benchmark which, std::size_t max_n,
                                 std::size_t max_d, std::uint64_t seed) {
  const DatasetInfo info = benchmark_info(which);
  const std::size_t n = std::min(info.n, max_n);
  switch (which) {
    case Benchmark::kKeggNetwork:
      return make_kegg_like(n, seed);
    case Benchmark::kRoadNetwork:
      return make_road_like(n, seed);
    case Benchmark::kUsCensus1990:
      return make_census_like(n, seed);
    case Benchmark::kIlsvrc2012: {
      // Pick the largest paper patch side whose d fits max_d.
      std::size_t side = 2;
      for (std::size_t candidate : {4ul, 8ul, 16ul, 32ul, 64ul, 256ul}) {
        if (candidate * candidate * 3 <= max_d) {
          side = candidate;
        }
      }
      return make_ilsvrc_like(n, side, seed);
    }
  }
  throw InvalidArgument("unknown benchmark");
}

}  // namespace swhkm::data
