#pragma once

#include <string>

#include "data/dataset.hpp"

namespace swhkm::data {

/// Binary dataset format "SWKM": little-endian header (magic, version,
/// n, d as u64) followed by n*d float32 values row-major. Round-trips
/// exactly; used by examples to cache generated data between runs.
void save_binary(const Dataset& dataset, const std::string& path);
Dataset load_binary(const std::string& path);

/// Plain CSV (no header): one sample per line, comma-separated floats.
/// For interchange with plotting scripts and for small fixtures.
void save_csv(const Dataset& dataset, const std::string& path);
Dataset load_csv(const std::string& path, const std::string& name = "csv");

}  // namespace swhkm::data
