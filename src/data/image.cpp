#include "data/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace swhkm::data {

void save_ppm(const Image& image, const std::string& path) {
  SWHKM_REQUIRE(!image.empty(), "refusing to save an empty image");
  std::ofstream file(path, std::ios::binary);
  SWHKM_REQUIRE(static_cast<bool>(file), "cannot open " + path + " to write");
  file << "P6\n" << image.width() << " " << image.height() << "\n255\n";
  file.write(reinterpret_cast<const char*>(image.raw().data()),
             static_cast<std::streamsize>(image.raw().size()));
  if (!file) {
    throw Error("short write to " + path);
  }
}

Image load_ppm(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  SWHKM_REQUIRE(static_cast<bool>(file), "cannot open " + path + " to read");
  std::string magic;
  file >> magic;
  if (magic != "P6") {
    throw InvalidArgument(path + " is not a binary PPM (P6)");
  }
  std::size_t width = 0;
  std::size_t height = 0;
  int maxval = 0;
  file >> width >> height >> maxval;
  if (!file || maxval != 255 || width == 0 || height == 0) {
    throw InvalidArgument(path + " has an unsupported PPM header");
  }
  file.get();  // single whitespace after header
  Image image(width, height);
  file.read(reinterpret_cast<char*>(
                const_cast<std::uint8_t*>(image.raw().data())),
            static_cast<std::streamsize>(image.raw().size()));
  if (!file) {
    throw InvalidArgument(path + " is truncated");
  }
  return image;
}

std::array<std::array<std::uint8_t, 3>, 7> land_cover_palette() {
  // Deep Globe 2018 class colours.
  return {{{0, 255, 255},    // urban        - cyan
           {255, 255, 0},    // agriculture  - yellow
           {255, 0, 255},    // rangeland    - magenta
           {0, 255, 0},      // forest       - green
           {0, 0, 255},      // water        - blue
           {255, 255, 255},  // barren       - white
           {0, 0, 0}}};      // unknown      - black
}

namespace {

/// Smooth pseudo-terrain: sum of a few random cosine plane waves. Cheap,
/// seedable, and produces contiguous regions like real land cover.
class TerrainField {
 public:
  TerrainField(util::Xoshiro256& rng, std::size_t waves = 6) {
    waves_.reserve(waves);
    for (std::size_t w = 0; w < waves; ++w) {
      waves_.push_back({rng.uniform(-1.0, 1.0) * 0.02,
                        rng.uniform(-1.0, 1.0) * 0.02,
                        rng.uniform(0.0, 6.283185307)});
    }
  }

  double at(double x, double y) const {
    double value = 0;
    for (const auto& wave : waves_) {
      value += std::cos(wave.fx * x + wave.fy * y + wave.phase);
    }
    return value / static_cast<double>(waves_.size());
  }

 private:
  struct Wave {
    double fx, fy, phase;
  };
  std::vector<Wave> waves_;
};

}  // namespace

Image make_land_cover_scene(std::size_t width, std::size_t height,
                            std::uint64_t seed) {
  SWHKM_REQUIRE(width > 0 && height > 0, "scene must be non-empty");
  util::Xoshiro256 rng(seed);
  const TerrainField elevation(rng);
  const TerrainField moisture(rng);
  const TerrainField development(rng);

  // Spectral signatures (mean RGB) per class; classes are decided from the
  // terrain fields so regions are spatially coherent.
  struct Signature {
    double r, g, b, noise;
  };
  const Signature signatures[7] = {
      {140, 138, 148, 14},  // urban: grey
      {168, 158, 84, 10},   // agriculture: straw
      {150, 170, 110, 12},  // rangeland
      {48, 92, 50, 9},      // forest
      {38, 60, 110, 6},     // water
      {180, 168, 150, 12},  // barren
      {90, 90, 90, 30},     // unknown: noisy grey
  };

  Image image(width, height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const double fx = static_cast<double>(x);
      const double fy = static_cast<double>(y);
      const double e = elevation.at(fx, fy);
      const double m = moisture.at(fx, fy);
      const double dev = development.at(fx, fy);
      std::size_t cls;
      if (m > 0.45) {
        cls = 4;  // water
      } else if (dev > 0.4) {
        cls = 0;  // urban
      } else if (e > 0.35) {
        cls = 5;  // barren highland
      } else if (m > 0.1) {
        cls = 3;  // forest
      } else if (dev > 0.0) {
        cls = 1;  // agriculture
      } else if (e > -0.5) {
        cls = 2;  // rangeland
      } else {
        cls = 6;  // unknown
      }
      const Signature& sig = signatures[cls];
      auto channel = [&](double mean) {
        return static_cast<std::uint8_t>(
            std::clamp(mean + sig.noise * rng.normal(), 0.0, 255.0));
      };
      image.set_pixel(x, y, channel(sig.r), channel(sig.g), channel(sig.b));
    }
  }
  return image;
}

Dataset extract_patches(const Image& image, std::size_t side,
                        std::size_t stride) {
  SWHKM_REQUIRE(side > 0 && stride > 0, "side and stride must be positive");
  SWHKM_REQUIRE(image.width() >= side && image.height() >= side,
                "image smaller than one patch");
  const std::size_t nx = (image.width() - side) / stride + 1;
  const std::size_t ny = (image.height() - side) / stride + 1;
  const std::size_t d = side * side * 3;
  util::Matrix samples(nx * ny, d);
  std::size_t row = 0;
  for (std::size_t py = 0; py < ny; ++py) {
    for (std::size_t px = 0; px < nx; ++px, ++row) {
      float* out = samples.row(row).data();
      for (std::size_t y = 0; y < side; ++y) {
        const std::uint8_t* src = image.pixel(px * stride, py * stride + y);
        for (std::size_t i = 0; i < side * 3; ++i) {
          *out++ = static_cast<float>(src[i]);
        }
      }
    }
  }
  return Dataset("patches", std::move(samples));
}

Image render_patch_labels(std::size_t image_width, std::size_t image_height,
                          std::size_t side, std::size_t stride,
                          const std::vector<std::uint32_t>& labels,
                          std::size_t num_classes) {
  SWHKM_REQUIRE(side > 0 && stride > 0, "side and stride must be positive");
  const std::size_t nx = (image_width - side) / stride + 1;
  const std::size_t ny = (image_height - side) / stride + 1;
  SWHKM_REQUIRE(labels.size() == nx * ny,
                "label count does not match patch grid");
  const auto palette = land_cover_palette();
  Image out(image_width, image_height);
  for (std::size_t py = 0; py < ny; ++py) {
    for (std::size_t px = 0; px < nx; ++px) {
      const std::uint32_t label = labels[py * nx + px];
      SWHKM_REQUIRE(label < num_classes, "label out of range");
      const auto& colour = palette[label % palette.size()];
      const std::size_t x_end =
          px + 1 == nx ? image_width : px * stride + stride;
      const std::size_t y_end =
          py + 1 == ny ? image_height : py * stride + stride;
      for (std::size_t y = py * stride; y < y_end; ++y) {
        for (std::size_t x = px * stride; x < x_end; ++x) {
          out.set_pixel(x, y, colour[0], colour[1], colour[2]);
        }
      }
    }
  }
  return out;
}

}  // namespace swhkm::data
