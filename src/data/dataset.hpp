#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace swhkm::data {

/// Shape descriptor for a clustering workload. For the paper-scale
/// benchmarks (Table II) the samples are never materialised — engines and
/// the performance model consume the shape; the functional path consumes a
/// scaled-down Dataset with the same structure.
struct DatasetInfo {
  std::string name;
  std::size_t n = 0;  ///< number of samples
  std::size_t d = 0;  ///< dimensions per sample
  std::size_t k = 0;  ///< the paper's target centroid count for this set

  std::uint64_t element_count() const {
    return static_cast<std::uint64_t>(n) * d;
  }
};

/// In-memory dataset: n samples of d dimensions, row-major float.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, util::Matrix samples)
      : name_(std::move(name)), samples_(std::move(samples)) {}

  const std::string& name() const { return name_; }
  std::size_t n() const { return samples_.rows(); }
  std::size_t d() const { return samples_.cols(); }
  bool empty() const { return samples_.empty(); }

  const util::Matrix& samples() const { return samples_; }
  util::Matrix& samples() { return samples_; }
  std::span<const float> sample(std::size_t i) const {
    return samples_.row(i);
  }

  DatasetInfo info(std::size_t k = 0) const {
    return DatasetInfo{name_, n(), d(), k};
  }

  /// Per-dimension mean over all samples (used by tests and by centroid
  /// sanity checks).
  std::vector<double> dimension_means() const;

  /// Smallest axis-aligned box containing every sample, as (lo, hi) pairs.
  std::pair<std::vector<float>, std::vector<float>> bounding_box() const;

 private:
  std::string name_;
  util::Matrix samples_;
};

}  // namespace swhkm::data
