#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace swhkm::data {

/// Table II of the paper: the four benchmark workloads. We cannot ship the
/// originals (UCI download, 1 PB of ILSVRC features), so each entry has a
/// deterministic synthetic surrogate (below) that matches the shape and the
/// broad statistical character; the paper's metric (time per iteration) is
/// shape-dependent, not value-dependent.
enum class Benchmark { kKeggNetwork, kRoadNetwork, kUsCensus1990, kIlsvrc2012 };

DatasetInfo benchmark_info(Benchmark which);
std::vector<DatasetInfo> paper_benchmarks();

/// Gaussian mixture ("blobs"): k_true well-separated spherical clusters.
/// The workhorse for correctness tests — with `separation` large relative
/// to `spread`, every engine and serial Lloyd agree exactly on assignments.
Dataset make_blobs(std::size_t n, std::size_t d, std::size_t k_true,
                   std::uint64_t seed, double separation = 10.0,
                   double spread = 1.0);

/// Uniform noise in [lo, hi)^d — the adversarial case for FP-order
/// robustness tests.
Dataset make_uniform(std::size_t n, std::size_t d, std::uint64_t seed,
                     float lo = 0.0f, float hi = 1.0f);

/// KEGG metabolic network surrogate: skewed non-negative reaction features
/// (log-normal-ish), 28 dims.
Dataset make_kegg_like(std::size_t n, std::uint64_t seed);

/// Road network surrogate: (latitude, longitude, altitude-derived) tuples
/// clustered along polyline "roads", 4 dims.
Dataset make_road_like(std::size_t n, std::uint64_t seed);

/// US Census 1990 surrogate: 68 small-cardinality categorical codes with
/// correlated blocks.
Dataset make_census_like(std::size_t n, std::uint64_t seed);

/// ILSVRC2012 raw-pixel surrogate: patch features in [0,255] with strong
/// low-frequency spatial correlation, d = side*side*3 (paper: 32/64/256).
Dataset make_ilsvrc_like(std::size_t n, std::size_t side, std::uint64_t seed);

/// Scaled-down materialisation of a benchmark surrogate for functional
/// validation: at most `max_n` samples and `max_d` dimensions, same
/// generator family as the full-shape entry.
Dataset make_benchmark_surrogate(Benchmark which, std::size_t max_n,
                                 std::size_t max_d, std::uint64_t seed);

}  // namespace swhkm::data
