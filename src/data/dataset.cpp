#include "data/dataset.hpp"

#include <algorithm>
#include <limits>

namespace swhkm::data {

std::vector<double> Dataset::dimension_means() const {
  std::vector<double> means(d(), 0.0);
  if (n() == 0) {
    return means;
  }
  for (std::size_t i = 0; i < n(); ++i) {
    const std::span<const float> row = samples_.row(i);
    for (std::size_t u = 0; u < d(); ++u) {
      means[u] += row[u];
    }
  }
  for (double& m : means) {
    m /= static_cast<double>(n());
  }
  return means;
}

std::pair<std::vector<float>, std::vector<float>> Dataset::bounding_box()
    const {
  std::vector<float> lo(d(), std::numeric_limits<float>::max());
  std::vector<float> hi(d(), std::numeric_limits<float>::lowest());
  for (std::size_t i = 0; i < n(); ++i) {
    const std::span<const float> row = samples_.row(i);
    for (std::size_t u = 0; u < d(); ++u) {
      lo[u] = std::min(lo[u], row[u]);
      hi[u] = std::max(hi[u], row[u]);
    }
  }
  return {std::move(lo), std::move(hi)};
}

}  // namespace swhkm::data
