#include "data/normalize.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace swhkm::data {

namespace {

void transform(util::Matrix& matrix, const ScalingParams& params,
               bool forward) {
  SWHKM_REQUIRE(matrix.cols() == params.offset.size(),
                "scaling params built for a different dimensionality");
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    std::span<float> row = matrix.row(r);
    for (std::size_t u = 0; u < row.size(); ++u) {
      if (forward) {
        row[u] = static_cast<float>(
            (static_cast<double>(row[u]) - params.offset[u]) *
            params.scale[u]);
      } else {
        const double scale = params.scale[u];
        row[u] = static_cast<float>(
            scale == 0 ? params.offset[u]
                       : static_cast<double>(row[u]) / scale +
                             params.offset[u]);
      }
    }
  }
}

}  // namespace

ScalingParams minmax_scale(Dataset& dataset) {
  SWHKM_REQUIRE(!dataset.empty(), "cannot scale an empty dataset");
  const auto [lo, hi] = dataset.bounding_box();
  ScalingParams params;
  params.offset.resize(dataset.d());
  params.scale.resize(dataset.d());
  for (std::size_t u = 0; u < dataset.d(); ++u) {
    params.offset[u] = lo[u];
    const double range = static_cast<double>(hi[u]) - lo[u];
    params.scale[u] = range > 0 ? 1.0 / range : 0.0;
  }
  apply_scaling(params, dataset.samples());
  return params;
}

ScalingParams zscore_scale(Dataset& dataset) {
  SWHKM_REQUIRE(!dataset.empty(), "cannot scale an empty dataset");
  const std::vector<double> means = dataset.dimension_means();
  std::vector<double> variance(dataset.d(), 0.0);
  for (std::size_t i = 0; i < dataset.n(); ++i) {
    const auto row = dataset.sample(i);
    for (std::size_t u = 0; u < dataset.d(); ++u) {
      const double diff = static_cast<double>(row[u]) - means[u];
      variance[u] += diff * diff;
    }
  }
  ScalingParams params;
  params.offset = means;
  params.scale.resize(dataset.d());
  for (std::size_t u = 0; u < dataset.d(); ++u) {
    const double stddev =
        std::sqrt(variance[u] / static_cast<double>(dataset.n()));
    params.scale[u] = stddev > 0 ? 1.0 / stddev : 0.0;
  }
  apply_scaling(params, dataset.samples());
  return params;
}

void apply_scaling(const ScalingParams& params, util::Matrix& matrix) {
  transform(matrix, params, /*forward=*/true);
}

void invert_scaling(const ScalingParams& params, util::Matrix& matrix) {
  transform(matrix, params, /*forward=*/false);
}

}  // namespace swhkm::data
