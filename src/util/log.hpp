#pragma once

#include <sstream>
#include <string>

namespace swhkm::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold. Messages below this level are dropped.
/// Default is kWarn so library users see problems but not chatter;
/// benches and examples raise it to kInfo explicitly.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr with a level tag. Thread-safe (single write call).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { log_line(level_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace swhkm::util

#define SWHKM_LOG(level)                                      \
  if (static_cast<int>(level) <                               \
      static_cast<int>(::swhkm::util::log_level())) {         \
  } else                                                      \
    ::swhkm::util::detail::LineBuilder(level)

#define SWHKM_DEBUG SWHKM_LOG(::swhkm::util::LogLevel::kDebug)
#define SWHKM_INFO SWHKM_LOG(::swhkm::util::LogLevel::kInfo)
#define SWHKM_WARN SWHKM_LOG(::swhkm::util::LogLevel::kWarn)
#define SWHKM_ERROR SWHKM_LOG(::swhkm::util::LogLevel::kError)
