#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace swhkm::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold. Messages below this level are dropped.
/// Default is kWarn so library users see problems but not chatter;
/// benches and examples raise it to kInfo explicitly.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Structured context riding with a log record: which component spoke, and
/// (when the message is scoped to a rank / iteration) where in the run it
/// happened. Negative rank/iteration mean "not applicable" and are omitted
/// from the rendered output.
struct LogContext {
  const char* component = "";
  int rank = -1;
  std::int64_t iteration = -1;
};

/// True when SWHKM_LOG_JSON is set (non-empty, not "0") in the
/// environment: log records are emitted as one-line JSON (JSONL) instead
/// of the human text format. Read once, at first use.
bool log_json_enabled();

/// Render a record as the human text line (no trailing newline):
/// `[swhkm WARN  level1 rank=0 iter=3] msg`. Exposed for tests.
std::string render_log_text(LogLevel level, const LogContext& ctx,
                            const std::string& msg);

/// Render a record as one JSONL line (no trailing newline):
/// `{"level":"warn","component":"level1","rank":0,"iteration":3,"msg":...}`.
/// Exposed for tests.
std::string render_log_json(LogLevel level, const LogContext& ctx,
                            const std::string& msg);

/// Emit one record to stderr — text or JSONL per SWHKM_LOG_JSON.
/// Thread-safe (single write call).
void log_line(LogLevel level, const LogContext& ctx, const std::string& msg);

/// Context-free overload (legacy call sites).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  LineBuilder(LogLevel level, LogContext ctx) : level_(level), ctx_(ctx) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { log_line(level_, ctx_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  LogContext ctx_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace swhkm::util

#define SWHKM_LOG(level)                                      \
  if (static_cast<int>(level) <                               \
      static_cast<int>(::swhkm::util::log_level())) {         \
  } else                                                      \
    ::swhkm::util::detail::LineBuilder(level)

/// Structured variant: SWHKM_LOG_AT(level, "level1", rank, iter) << "...";
/// pass -1 for a rank/iteration that does not apply.
#define SWHKM_LOG_AT(level, component, rank, iteration)       \
  if (static_cast<int>(level) <                               \
      static_cast<int>(::swhkm::util::log_level())) {         \
  } else                                                      \
    ::swhkm::util::detail::LineBuilder(                       \
        level, ::swhkm::util::LogContext{                     \
                   component, static_cast<int>(rank),         \
                   static_cast<std::int64_t>(iteration)})

#define SWHKM_DEBUG SWHKM_LOG(::swhkm::util::LogLevel::kDebug)
#define SWHKM_INFO SWHKM_LOG(::swhkm::util::LogLevel::kInfo)
#define SWHKM_WARN SWHKM_LOG(::swhkm::util::LogLevel::kWarn)
#define SWHKM_ERROR SWHKM_LOG(::swhkm::util::LogLevel::kError)

#define SWHKM_INFO_AT(component, rank, iteration) \
  SWHKM_LOG_AT(::swhkm::util::LogLevel::kInfo, component, rank, iteration)
#define SWHKM_WARN_AT(component, rank, iteration) \
  SWHKM_LOG_AT(::swhkm::util::LogLevel::kWarn, component, rank, iteration)
