#include "util/units.hpp"

#include <array>
#include <cinttypes>
#include <cstdio>

namespace swhkm::util {

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB",
                  static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " B", bytes);
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  }
  return buf;
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace swhkm::util
