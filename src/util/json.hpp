#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace swhkm::util {

/// Round-trip formatting for doubles: the shortest decimal string that
/// parses back to the identical bits (std::to_chars' default, i.e. the
/// max_digits10 discipline). Every JSON/CSV emitter of measured seconds
/// must go through this — ostream's default 6 significant digits aliases
/// long-run timelines (two distinct iteration starts print identically).
/// JSON has no inf/nan, so non-finite values render as "null".
std::string format_double(double value);

/// Streaming JSON writer with automatic comma/indent bookkeeping — the one
/// emitter behind the telemetry artifacts, the bench JSON files and the
/// JSONL log sink (which use indent 0 for one-line records). Usage:
///
///   util::JsonWriter w(out);
///   w.begin_object();
///   w.key("workload").begin_object();
///   w.key("n").value(std::uint64_t{1024});
///   w.end_object();
///   w.key("series").begin_array().value(0.25).value(0.5).end_array();
///   w.end_object();
///
/// Strings are escaped (quotes, backslashes, control characters); doubles
/// go through format_double. The writer asserts nothing — it trusts the
/// caller to balance begin/end, and flushes nothing (the stream owns
/// buffering).
class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 emits compact one-line JSON.
  explicit JsonWriter(std::ostream& out, int indent = 2)
      : out_(out), indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view name);

  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& null();

  /// key + value in one call, for flat records.
  template <typename T>
  JsonWriter& kv(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

 private:
  void separator();  ///< comma + newline/indent before the next element
  void write_escaped(std::string_view s);

  std::ostream& out_;
  int indent_ = 2;
  struct Frame {
    bool array = false;
    bool first = true;
  };
  std::vector<Frame> stack_;
  bool after_key_ = false;
};

/// Escape `s` for inclusion inside a JSON string literal (no surrounding
/// quotes). Shared by JsonWriter and the log sink.
std::string json_escape(std::string_view s);

}  // namespace swhkm::util
