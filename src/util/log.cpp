#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace swhkm::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string line = std::string("[swhkm ") + tag(level) + "] " + msg + "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace swhkm::util
