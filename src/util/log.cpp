#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/json.hpp"

namespace swhkm::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

const char* level_word(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool log_json_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("SWHKM_LOG_JSON");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
  }();
  return enabled;
}

std::string render_log_text(LogLevel level, const LogContext& ctx,
                            const std::string& msg) {
  std::string line = std::string("[swhkm ") + tag(level);
  if (ctx.component != nullptr && *ctx.component != '\0') {
    line += ' ';
    line += ctx.component;
  }
  if (ctx.rank >= 0) {
    line += " rank=" + std::to_string(ctx.rank);
  }
  if (ctx.iteration >= 0) {
    line += " iter=" + std::to_string(ctx.iteration);
  }
  line += "] " + msg;
  return line;
}

std::string render_log_json(LogLevel level, const LogContext& ctx,
                            const std::string& msg) {
  std::string line = std::string("{\"level\":\"") + level_word(level) + '"';
  line += ",\"component\":\"";
  if (ctx.component != nullptr) {
    line += json_escape(ctx.component);
  }
  line += '"';
  if (ctx.rank >= 0) {
    line += ",\"rank\":" + std::to_string(ctx.rank);
  }
  if (ctx.iteration >= 0) {
    line += ",\"iteration\":" + std::to_string(ctx.iteration);
  }
  line += ",\"msg\":\"" + json_escape(msg) + "\"}";
  return line;
}

void log_line(LogLevel level, const LogContext& ctx, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string line = log_json_enabled() ? render_log_json(level, ctx, msg)
                                        : render_log_text(level, ctx, msg);
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

void log_line(LogLevel level, const std::string& msg) {
  log_line(level, LogContext{}, msg);
}

}  // namespace swhkm::util
