#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace swhkm::util {

std::string format_double(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  // Shortest round-trip decimal (to_chars without a precision argument):
  // strtod(format_double(x)) == x bit for bit.
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  std::string out(buf, result.ptr);
  // to_chars may produce "1e+05"-style output, which is valid JSON; it may
  // also produce bare integers ("3"), also valid JSON numbers.
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separator() {
  if (after_key_) {
    // Value completes a "key: " pair — no comma, no indent.
    after_key_ = false;
    return;
  }
  if (stack_.empty()) {
    return;  // top-level value
  }
  Frame& frame = stack_.back();
  if (!frame.first) {
    out_ << ',';
  }
  frame.first = false;
  if (indent_ > 0) {
    out_ << '\n'
         << std::string(stack_.size() * static_cast<std::size_t>(indent_),
                        ' ');
  }
}

void JsonWriter::write_escaped(std::string_view s) {
  out_ << '"' << json_escape(s) << '"';
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ << '{';
  stack_.push_back(Frame{false, true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool empty = stack_.empty() ? true : stack_.back().first;
  stack_.pop_back();
  if (indent_ > 0 && !empty) {
    out_ << '\n'
         << std::string(stack_.size() * static_cast<std::size_t>(indent_),
                        ' ');
  }
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ << '[';
  stack_.push_back(Frame{true, true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool empty = stack_.empty() ? true : stack_.back().first;
  stack_.pop_back();
  if (indent_ > 0 && !empty) {
    out_ << '\n'
         << std::string(stack_.size() * static_cast<std::size_t>(indent_),
                        ' ');
  }
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  separator();
  write_escaped(name);
  out_ << (indent_ > 0 ? ": " : ":");
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separator();
  out_ << format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separator();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separator();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separator();
  write_escaped(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  separator();
  out_ << "null";
  return *this;
}

}  // namespace swhkm::util
