#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace swhkm::util {

/// Dense row-major matrix of float — the storage type for samples and
/// centroids throughout the library. Rows are contiguous so a row maps to a
/// simulated DMA transfer and a std::span without copies.
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_vector(std::size_t rows, std::size_t cols,
                            std::vector<float> values) {
    SWHKM_REQUIRE(values.size() == rows * cols,
                  "value count must equal rows*cols");
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = std::move(values);
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<float> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void fill(float value) { data_.assign(data_.size(), value); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace swhkm::util
