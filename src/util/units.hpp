#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace swhkm::util {

inline constexpr std::size_t kKiB = 1024;
inline constexpr std::size_t kMiB = 1024 * kKiB;
inline constexpr std::size_t kGiB = 1024 * kMiB;

inline constexpr double kGB = 1e9;  // decimal gigabyte, used for bandwidths

/// "64 KiB", "1.5 MiB", "132 B" — human-readable byte counts.
std::string format_bytes(std::uint64_t bytes);

/// "18.2 s", "3.1 ms", "420 us" — human-readable durations.
std::string format_seconds(double seconds);

/// "1,064,496" — thousands separators for counters in reports.
std::string format_count(std::uint64_t value);

/// Integer ceiling division for partition arithmetic; requires b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Round `a` up to the next multiple of `b`; requires b > 0.
constexpr std::uint64_t round_up(std::uint64_t a, std::uint64_t b) {
  return ceil_div(a, b) * b;
}

/// Largest power of two <= x; requires x > 0.
constexpr std::uint64_t floor_pow2(std::uint64_t x) {
  std::uint64_t p = 1;
  while (p * 2 <= x) {
    p *= 2;
  }
  return p;
}

constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace swhkm::util
