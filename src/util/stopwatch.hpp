#pragma once

#include <chrono>

namespace swhkm::util {

/// Monotonic wall-clock stopwatch for benches and examples. Simulated time
/// (the performance model) never uses this; it lives in simarch::CostTally.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace swhkm::util
