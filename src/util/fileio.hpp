#pragma once

#include <fstream>
#include <functional>
#include <ios>
#include <string>

namespace swhkm::util {

/// Write `path` atomically and durably: stream the contents into a
/// same-directory temp file, flush + fsync it, then rename(2) it over
/// `path`. A crash at any point leaves either the complete old file or the
/// complete new file on disk — never a torn mix, which is what lets
/// load_checkpoint trust that a file that passes its CRC is a real
/// checkpoint. The callback receives the open stream; if it throws or the
/// stream fails, the temp file is removed and `path` is untouched.
void write_file_atomic(const std::string& path, std::ios::openmode mode,
                       const std::function<void(std::ofstream&)>& body);

}  // namespace swhkm::util
