#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace swhkm::util {

/// Small result-table builder used by every bench binary: collects rows of
/// heterogeneous cells, then renders either an aligned text table (for the
/// terminal) or CSV (for plotting scripts).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row. Cells are appended with operator<< style add() calls;
  /// a row may be shorter than the header (missing cells render empty).
  Table& new_row();

  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(double value, int precision = 4);
  Table& add(std::uint64_t value);
  Table& add(std::int64_t value);
  Table& add(int value);

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Aligned, boxed text rendering.
  std::string to_text() const;
  /// RFC-4180-ish CSV rendering (quotes cells containing comma/quote/newline).
  std::string to_csv() const;

  void print(std::ostream& out) const;
  /// Write CSV to `path`; returns false (and logs) on IO failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace swhkm::util
