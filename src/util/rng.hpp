#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace swhkm::util {

/// xoshiro256** 1.0 — a small, fast, high-quality PRNG (Blackman & Vigna).
/// We carry our own generator instead of std::mt19937 so that every dataset
/// and initialisation in the repository is bit-reproducible across standard
/// libraries and platforms.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t below(std::uint64_t n) {
    if (n == 0) {
      return 0;
    }
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) {
        return r % n;
      }
    }
  }

  /// Standard normal via Box–Muller (no cached second value: keeps the
  /// generator stateless beyond its 256-bit core, which makes stream
  /// splitting by reseeding safe).
  double normal();

  /// Derive an independent stream for a sub-task (e.g. per-rank data
  /// generation) without sharing state.
  Xoshiro256 split(std::uint64_t stream_id) {
    return Xoshiro256((*this)() ^ (0xA0761D6478BD642FULL * (stream_id + 1)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

inline double Xoshiro256::normal() {
  // Box–Muller; discard the cosine twin. u1 is kept away from 0 so the log
  // is finite.
  double u1 = uniform();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return radius * std::sin(kTwoPi * u2);
}

}  // namespace swhkm::util
