#include "util/fileio.hpp"

#include <atomic>
#include <cstdio>

#include "util/error.hpp"

#if defined(_WIN32)
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace swhkm::util {

namespace {

/// fsync the file (and best-effort its directory after the rename) so the
/// rename is durable, not just atomic. Failure to sync the directory is
/// ignored: some filesystems refuse O_RDONLY directory fds, and the rename
/// itself is already crash-atomic.
void fsync_path(const std::string& path, bool directory) {
#if defined(_WIN32)
  (void)path;
  (void)directory;
#else
  const int fd = ::open(path.c_str(), O_RDONLY | (directory ? O_DIRECTORY : 0));
  if (fd < 0) {
    if (!directory) {
      throw Error("cannot reopen " + path + " for fsync");
    }
    return;
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && !directory) {
    throw Error("fsync failed for " + path);
  }
#endif
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  return slash == 0 ? "/" : path.substr(0, slash);
}

}  // namespace

void write_file_atomic(const std::string& path, std::ios::openmode mode,
                       const std::function<void(std::ofstream&)>& body) {
  // Unique per process and per call, so two threads checkpointing the same
  // target never stream into each other's temp file.
  static std::atomic<std::uint64_t> sequence{0};
  const std::string tmp =
      path + ".tmp." +
#if defined(_WIN32)
      std::to_string(0) +
#else
      std::to_string(static_cast<long>(::getpid())) +
#endif
      "." + std::to_string(sequence.fetch_add(1));

  try {
    {
      std::ofstream file(tmp, mode | std::ios::trunc);
      SWHKM_REQUIRE(static_cast<bool>(file),
                    "cannot open " + tmp + " to write");
      body(file);
      file.flush();
      if (!file) {
        throw Error("short write to " + tmp);
      }
    }
    fsync_path(tmp, /*directory=*/false);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw Error("cannot rename " + tmp + " over " + path);
    }
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  fsync_path(parent_dir(path), /*directory=*/true);
}

}  // namespace swhkm::util
