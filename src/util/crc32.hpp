#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace swhkm::util {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
/// checkpoint format v2 carries over its payload so a torn or bit-flipped
/// file is rejected instead of loaded as garbage centroids. `seed` chains
/// incremental updates: crc32(b, crc32(a)) == crc32(a ++ b).
inline std::uint32_t crc32(std::span<const std::byte> bytes,
                           std::uint32_t seed = 0) {
  const auto& table = detail::crc32_table();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::byte b : bytes) {
    crc = table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace swhkm::util
