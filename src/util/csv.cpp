#include "util/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace swhkm::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SWHKM_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

Table& Table::new_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  if (rows_.empty()) {
    new_row();
  }
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return add(std::string(buf));
}

Table& Table::add(std::uint64_t value) { return add(std::to_string(value)); }
Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& cells,
                      std::string& out) {
    out += "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    out += "\n";
  };

  std::string rule = "+";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(widths[c] + 2, '-') + "+";
  }
  rule += "\n";

  std::string out = rule;
  emit_row(headers_, out);
  out += rule;
  for (const auto& row : rows_) {
    emit_row(row, out);
  }
  out += rule;
  return out;
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += "\"";
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) {
      out += ",";
    }
    out += csv_escape(headers_[c]);
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c != 0) {
        out += ",";
      }
      if (c < row.size()) {
        out += csv_escape(row[c]);
      }
    }
    out += "\n";
  }
  return out;
}

void Table::print(std::ostream& out) const { out << to_text(); }

bool Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    SWHKM_WARN << "cannot open " << path << " for writing";
    return false;
  }
  file << to_csv();
  return static_cast<bool>(file);
}

}  // namespace swhkm::util
