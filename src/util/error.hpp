#pragma once

#include <stdexcept>
#include <string>

namespace swhkm {

/// Root of the library's exception hierarchy. Everything swhkm throws
/// derives from this, so callers can catch one type at the API boundary.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A requested allocation does not fit in a simulated memory (e.g. a CPE's
/// 64 KiB LDM). Thrown by the scratchpad allocator; partition planners must
/// never let engine code reach this.
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& what) : Error(what) {}
};

/// A problem shape / machine combination violates one of the paper's
/// feasibility constraints (C1..C3'') for the requested partition level.
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
};

/// Malformed input: bad file format, inconsistent dimensions, invalid
/// configuration values.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A checkpoint file failed validation: bad magic, stale format version,
/// torn write, payload CRC mismatch. load_checkpoint throws this instead
/// of ever returning garbage centroids. Derives from InvalidArgument so
/// callers that only distinguish "bad input" keep working.
class CorruptCheckpointError : public InvalidArgument {
 public:
  explicit CorruptCheckpointError(const std::string& what)
      : InvalidArgument(what) {}
};

/// Internal invariant violation in the runtime (mismatched collective
/// participation, mailbox protocol breach). Indicates a bug, not bad input.
class RuntimeFault : public Error {
 public:
  explicit RuntimeFault(const std::string& what) : Error(what) {}
};

/// A blocking receive exceeded the configured watchdog timeout — the
/// swmpi runtime's "peer rank is stalled or dead" signal. The
/// RecoveryDriver treats it like any other RuntimeFault: retry the
/// iteration leg from the last good checkpoint.
class WatchdogTimeout : public RuntimeFault {
 public:
  explicit WatchdogTimeout(const std::string& what) : RuntimeFault(what) {}
};

/// The transport layer's CRC-32 trailer check failed and the bounded
/// NACK/resend handshake could not produce a clean copy — the payload that
/// reached this rank is not the payload the sender framed. Carries sender /
/// sequence / tag attribution in what(). Like every RuntimeFault, the
/// RecoveryDriver can retry the leg; unlike a crash, the still-valid
/// in-memory snapshot makes a localized (iteration-scope) retry sufficient.
class CorruptMessageError : public RuntimeFault {
 public:
  explicit CorruptMessageError(const std::string& what) : RuntimeFault(what) {}
};

/// A compute-layer SDC detector fired: the centroid snapshot's CRC no
/// longer matches the published bits, an update accumulator was mutated
/// outside its owner's arithmetic, or an algorithmic invariant (counts
/// conservation, inertia monotonicity) broke. The state that produced this
/// iteration is untrustworthy, but the last published snapshot is not —
/// the RecoveryDriver retries the iteration from it before escalating to
/// checkpoint rollback.
class SilentCorruptionError : public RuntimeFault {
 public:
  explicit SilentCorruptionError(const std::string& what)
      : RuntimeFault(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid(const std::string& what) {
  throw InvalidArgument(what);
}
}  // namespace detail

/// Lightweight precondition check used at public API boundaries.
#define SWHKM_REQUIRE(cond, msg)                                    \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::swhkm::detail::throw_invalid(std::string("precondition `") + \
                                     #cond + "` failed: " + (msg)); \
    }                                                               \
  } while (0)

}  // namespace swhkm
