#pragma once

#include <stdexcept>
#include <string>

namespace swhkm {

/// Root of the library's exception hierarchy. Everything swhkm throws
/// derives from this, so callers can catch one type at the API boundary.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A requested allocation does not fit in a simulated memory (e.g. a CPE's
/// 64 KiB LDM). Thrown by the scratchpad allocator; partition planners must
/// never let engine code reach this.
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& what) : Error(what) {}
};

/// A problem shape / machine combination violates one of the paper's
/// feasibility constraints (C1..C3'') for the requested partition level.
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
};

/// Malformed input: bad file format, inconsistent dimensions, invalid
/// configuration values.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A checkpoint file failed validation: bad magic, stale format version,
/// torn write, payload CRC mismatch. load_checkpoint throws this instead
/// of ever returning garbage centroids. Derives from InvalidArgument so
/// callers that only distinguish "bad input" keep working.
class CorruptCheckpointError : public InvalidArgument {
 public:
  explicit CorruptCheckpointError(const std::string& what)
      : InvalidArgument(what) {}
};

/// Internal invariant violation in the runtime (mismatched collective
/// participation, mailbox protocol breach). Indicates a bug, not bad input.
class RuntimeFault : public Error {
 public:
  explicit RuntimeFault(const std::string& what) : Error(what) {}
};

/// A blocking receive exceeded the configured watchdog timeout — the
/// swmpi runtime's "peer rank is stalled or dead" signal. The
/// RecoveryDriver treats it like any other RuntimeFault: retry the
/// iteration leg from the last good checkpoint.
class WatchdogTimeout : public RuntimeFault {
 public:
  explicit WatchdogTimeout(const std::string& what) : RuntimeFault(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid(const std::string& what) {
  throw InvalidArgument(what);
}
}  // namespace detail

/// Lightweight precondition check used at public API boundaries.
#define SWHKM_REQUIRE(cond, msg)                                    \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::swhkm::detail::throw_invalid(std::string("precondition `") + \
                                     #cond + "` failed: " + (msg)); \
    }                                                               \
  } while (0)

}  // namespace swhkm
