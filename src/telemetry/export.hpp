#pragma once

#include <ostream>
#include <span>

#include "simarch/trace.hpp"
#include "telemetry/critical_path.hpp"
#include "telemetry/spans.hpp"

namespace swhkm::telemetry {

/// Render a run's timelines as Chrome trace-event JSON (the format Perfetto
/// and chrome://tracing load). Two processes in the output:
///
///   pid 0 "simulated machine" — the simarch::Trace phase intervals, one
///     track (tid) per core group, timestamps in simulated time;
///   pid 1 "wall clock"        — telemetry WallSpans, one track per rank,
///     timestamps in microseconds since the Telemetry epoch.
///
/// FaultMarkers become global instant events ("ph":"i") on the simulated
/// timeline, pinned to the start of the iteration they interrupted, so the
/// recovery story lines up with the machine timeline it perturbed.
///
/// When a critical-path report is supplied, consecutive iterations get
/// Perfetto flow events ("ph":"s"/"f") on the simulated timeline: each
/// arrow leaves the end of iteration i on its gating core group's track
/// and lands at the start of iteration i+1 on the next gating track —
/// the cross-rank critical path drawn through the Gantt chart.
///
/// Any of the sources may be null/empty — the output is always a complete,
/// loadable trace. Timestamps go through util::format_double, so long-run
/// traces don't alias neighbouring events.
void write_chrome_trace(std::ostream& out, const simarch::Trace* sim,
                        const SpanSink* wall,
                        std::span<const simarch::FaultMarker> faults = {},
                        const CriticalPathReport* critical_path = nullptr);

}  // namespace swhkm::telemetry
