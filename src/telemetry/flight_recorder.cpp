#include "telemetry/flight_recorder.hpp"

#include "util/json.hpp"

namespace swhkm::telemetry {

const char* flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kIterationStart:
      return "iteration_start";
    case FlightEventKind::kIterationEnd:
      return "iteration_end";
    case FlightEventKind::kTileStart:
      return "tile_start";
    case FlightEventKind::kTileEnd:
      return "tile_end";
    case FlightEventKind::kCollectiveEnter:
      return "collective_enter";
    case FlightEventKind::kCollectiveExit:
      return "collective_exit";
    case FlightEventKind::kMailboxPark:
      return "mailbox_park";
    case FlightEventKind::kMailboxWake:
      return "mailbox_wake";
    case FlightEventKind::kCheckpointLeg:
      return "checkpoint_leg";
    case FlightEventKind::kFault:
      return "fault";
  }
  return "unknown";
}

FlightRing::FlightRing(std::size_t capacity,
                       std::chrono::steady_clock::time_point epoch)
    : events_(capacity == 0 ? 1 : capacity), epoch_(epoch) {}

std::vector<FlightEvent> FlightRing::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t cap = events_.size();
  const std::uint64_t retained = head < cap ? head : cap;
  std::vector<FlightEvent> out;
  out.reserve(retained);
  for (std::uint64_t i = head - retained; i < head; ++i) {
    out.push_back(events_[i % cap]);
  }
  return out;
}

namespace {

void write_event(util::JsonWriter& w, const FlightEvent& e) {
  w.begin_object();
  w.kv("kind", flight_event_kind_name(e.kind));
  w.kv("iteration", static_cast<std::uint64_t>(e.iteration));
  w.kv("wall_us", e.wall_us);
  if (e.sim_s >= 0) {
    w.kv("sim_s", e.sim_s);
  }
  w.kv("op", static_cast<std::uint64_t>(e.op));
  w.kv("a", e.a);
  w.kv("b", e.b);
  w.end_object();
}

}  // namespace

void write_flight_snapshots(util::JsonWriter& w,
                            const std::vector<FlightSnapshot>& ranks) {
  w.begin_array();
  for (const FlightSnapshot& s : ranks) {
    w.begin_object();
    w.kv("rank", static_cast<std::int64_t>(s.rank));
    w.kv("total_events", s.total);
    w.key("events").begin_array();
    for (const FlightEvent& e : s.events) {
      write_event(w, e);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

void write_postmortems(util::JsonWriter& w,
                       const std::vector<FaultPostmortem>& postmortems) {
  w.begin_array();
  for (const FaultPostmortem& p : postmortems) {
    w.begin_object();
    w.kv("iteration", static_cast<std::uint64_t>(p.iteration));
    w.kv("what", p.what);
    w.key("ranks");
    write_flight_snapshots(w, p.ranks);
    w.end_object();
  }
  w.end_array();
}

}  // namespace swhkm::telemetry
