#include "telemetry/run_report.hpp"

#include <cstdint>

#include "util/json.hpp"

namespace swhkm::telemetry {

namespace {

const char* init_name(core::InitMethod init) {
  switch (init) {
    case core::InitMethod::kFirstK:
      return "first_k";
    case core::InitMethod::kRandom:
      return "random";
    case core::InitMethod::kPlusPlus:
      return "plusplus";
  }
  return "unknown";
}

}  // namespace

void RunReport::set_result(const core::KmeansResult& result) {
  iterations = result.iterations;
  converged = result.converged;
  empty_clusters = result.empty_clusters;
  inertia = result.inertia;
  history = result.history;
}

void RunReport::write_json(std::ostream& out) const {
  util::JsonWriter w(out);
  w.begin_object();
  w.kv("run_id", std::string_view(run_id));

  w.key("workload").begin_object();
  w.kv("n", shape.n);
  w.kv("k", shape.k);
  w.kv("d", shape.d);
  w.kv("level", core::level_name(level));
  w.end_object();

  w.key("config").begin_object();
  w.kv("k", static_cast<std::uint64_t>(config.k));
  w.kv("max_iterations", static_cast<std::uint64_t>(config.max_iterations));
  w.kv("tolerance", config.tolerance);
  w.kv("init", init_name(config.init));
  w.kv("seed", config.seed);
  w.kv("tile_samples", static_cast<std::uint64_t>(config.tile_samples));
  w.kv("gate_assign", config.gate_assign);
  w.kv("gemm_assign", config.gemm_assign);
  w.kv("sstep_tiles", static_cast<std::uint64_t>(config.sstep_tiles));
  w.kv("iteration_base", static_cast<std::uint64_t>(config.iteration_base));
  w.kv("checkpoint_every",
       static_cast<std::uint64_t>(config.checkpoint_every));
  w.end_object();

  w.kv("machine", std::string_view(machine_summary));
  w.kv("plan", std::string_view(plan_summary));

  w.key("outcome").begin_object();
  w.kv("iterations", static_cast<std::uint64_t>(iterations));
  w.kv("converged", converged);
  w.kv("empty_clusters", static_cast<std::uint64_t>(empty_clusters));
  w.kv("inertia", inertia);
  w.end_object();

  w.key("history").begin_array();
  for (const auto& it : history) {
    w.begin_object();
    w.kv("max_centroid_shift", it.max_centroid_shift);
    w.kv("simulated_s", it.simulated_s);
    w.kv("prune_rate", it.prune_rate);
    w.kv("net_bytes", it.net_bytes);
    w.kv("dma_bytes", it.dma_bytes);
    w.kv("flops", it.flops);
    w.kv("net_rounds", it.net_rounds);
    w.kv("net_crossing_bytes", it.net_crossing_bytes);
    w.kv("retries", it.retries);
    w.kv("recover_s", it.recover_s);
    w.kv("sdc_retries", it.sdc_retries);
    w.kv("sdc_recomputed", it.sdc_recomputed);
    w.key("phases").begin_object();
    w.kv("sample_read_s", it.sample_read_s);
    w.kv("centroid_stream_s", it.centroid_stream_s);
    w.kv("compute_s", it.compute_s);
    w.kv("mesh_comm_s", it.mesh_comm_s);
    w.kv("net_comm_s", it.net_comm_s);
    w.kv("update_s", it.update_s);
    w.end_object();
    w.end_object();
  }
  w.end_array();

  // The modeled hierarchical-collective attribution, regrouped from the
  // flat "sim.collective.<site>.<field>" counters into one object per
  // site (group_argmin, update_rs, update_ag) — the per-run contention
  // story next to the per-iteration net_crossing_bytes in `history`.
  {
    bool any = false;
    const std::string prefix = "sim.collective.";
    std::string open_site;
    for (const auto& [name, v] : metrics.counters) {
      if (name.rfind(prefix, 0) != 0) {
        continue;
      }
      const std::string rest = name.substr(prefix.size());
      const std::size_t dot = rest.find('.');
      if (dot == std::string::npos) {
        continue;
      }
      const std::string site = rest.substr(0, dot);
      const std::string field = rest.substr(dot + 1);
      if (!any) {
        w.key("sim_collectives").begin_object();
        any = true;
      }
      if (site != open_site) {
        if (!open_site.empty()) {
          w.end_object();
        }
        w.key(site).begin_object();
        open_site = site;
      }
      w.kv(field, v);
    }
    if (!open_site.empty()) {
      w.end_object();
    }
    if (any) {
      w.end_object();
    }
  }

  w.key("faults").begin_array();
  for (const auto& f : faults) {
    w.begin_object();
    w.kv("iteration", f.iteration);
    w.kv("what", std::string_view(f.what));
    w.kv("recover_wall_s", f.wall_s);
    w.end_object();
  }
  w.end_array();

  if (has_recovery) {
    w.key("recovery").begin_object();
    w.kv("faults", static_cast<std::uint64_t>(recovery.faults));
    w.kv("retries", static_cast<std::uint64_t>(recovery.retries));
    w.kv("replans", static_cast<std::uint64_t>(recovery.replans));
    w.kv("recover_wall_s", recovery.recover_wall_s);
    w.kv("final_cgs", static_cast<std::uint64_t>(recovery.final_cgs));
    w.kv("degraded", recovery.degraded);
    w.kv("resumed_from_checkpoint", recovery.resumed_from_checkpoint);
    w.kv("sdc_detections", static_cast<std::uint64_t>(recovery.sdc_detections));
    w.kv("localized_retries",
         static_cast<std::uint64_t>(recovery.localized_retries));
    w.key("events").begin_array();
    for (const auto& e : recovery.events) {
      w.begin_object();
      w.kv("iteration", static_cast<std::uint64_t>(e.iteration));
      w.kv("what", std::string_view(e.what));
      w.kv("wall_s", e.wall_s);
      w.kv("sdc", e.sdc);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (has_critical_path) {
    w.key("critical_path");
    write_critical_path(w, critical_path);
  }

  if (has_recovery || !postmortems.empty()) {
    w.key("flight_recorder");
    write_postmortems(w, postmortems);
  }

  w.key("metrics");
  metrics.write_json(w);

  w.end_object();
  out << "\n";
}

bool reconciles(const RunReport& report) {
  const std::uint64_t counted_net =
      report.metrics.counter_or_zero("sim.net_bytes");
  const std::uint64_t counted_dma =
      report.metrics.counter_or_zero("sim.dma_bytes");
  if (counted_net == 0 && counted_dma == 0) {
    return true;  // telemetry was off (or nothing ran): nothing to check
  }
  std::uint64_t history_net = 0;
  std::uint64_t history_dma = 0;
  for (const auto& it : report.history) {
    history_net += it.net_bytes;
    history_dma += it.dma_bytes;
  }
  return history_net == counted_net && history_dma == counted_dma;
}

}  // namespace swhkm::telemetry
