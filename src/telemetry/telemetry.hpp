#pragma once

#include <chrono>
#include <cstdint>

#include "telemetry/registry.hpp"
#include "telemetry/spans.hpp"

namespace swhkm::telemetry {

/// What a Telemetry session records. Instrumentation is compiled in
/// everywhere; these switches (and, above them, the null sink on
/// KmeansConfig) decide whether a record call does anything. All
/// instrumentation is read-only with respect to algorithm state — results
/// are bit-identical with telemetry on or off (tested).
struct TelemetryConfig {
  bool wall_spans = true;  ///< per-phase wall-clock spans from the engines
  bool swmpi = true;       ///< collective/mailbox counters in the runtime
  bool flight = true;      ///< per-rank flight-recorder rings (postmortems)
  std::size_t flight_ring_events = 256;  ///< retained events per rank
};

/// One run's wall-clock observability session: a metrics registry, a span
/// sink and a shared steady-clock epoch for span timestamps. Not owned by
/// the engines — the caller creates it, threads a pointer through
/// KmeansConfig::telemetry (null = everything no-ops), and exports
/// artifacts from it after the run.
class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {})
      : config_(config), epoch_(std::chrono::steady_clock::now()) {
    if (config_.flight) {
      // Armed before any rank thread exists, so shards are born with rings
      // and hot paths see an armed-or-not registry, never a transition.
      metrics_.arm_flight(config_.flight_ring_events, epoch_);
    }
  }

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  const TelemetryConfig& config() const { return config_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  SpanSink& spans() { return spans_; }
  const SpanSink& spans() const { return spans_; }

  /// Microseconds since this session began (steady clock).
  double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

 private:
  TelemetryConfig config_;
  MetricsRegistry metrics_;
  SpanSink spans_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII phase span: records [construction, destruction) into the session's
/// sink. A null session (or wall_spans off) makes both ends free.
class ScopedSpan {
 public:
  ScopedSpan(Telemetry* session, const char* name, std::uint32_t rank,
             std::uint32_t iteration)
      : session_(session != nullptr && session->config().wall_spans ? session
                                                                    : nullptr),
        name_(name),
        rank_(rank),
        iteration_(iteration),
        start_us_(session_ != nullptr ? session_->now_us() : 0.0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (session_ != nullptr) {
      session_->spans().record(name_, rank_, iteration_, start_us_,
                               session_->now_us() - start_us_);
    }
  }

 private:
  Telemetry* session_;
  const char* name_;
  std::uint32_t rank_;
  std::uint32_t iteration_;
  double start_us_;
};

}  // namespace swhkm::telemetry
