#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace swhkm::telemetry {

/// One wall-clock interval on one rank — the real-time sibling of
/// simarch::TraceEvent (which is simulated time). Timestamps are
/// microseconds since the owning Telemetry session's epoch, which is what
/// the Chrome trace-event exporter emits directly.
struct WallSpan {
  std::string name;            ///< phase label ("assign", "update", ...)
  std::uint32_t rank = 0;      ///< engine rank / CG, or 0 for host spans
  std::uint32_t iteration = 0; ///< global iteration (0 for non-loop spans)
  double start_us = 0;
  double duration_us = 0;
};

/// Thread-safe append-only span store. Engine ranks record concurrently
/// (a handful of spans per iteration — the mutex is nowhere near any hot
/// path); spans() copies so exporters never race recorders.
class SpanSink {
 public:
  void record(std::string_view name, std::uint32_t rank,
              std::uint32_t iteration, double start_us, double duration_us);

  std::size_t size() const;
  std::vector<WallSpan> spans() const;  ///< copy, append order
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<WallSpan> spans_;
};

}  // namespace swhkm::telemetry
