#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace swhkm::util {
class JsonWriter;
}

namespace swhkm::telemetry {

class FlightRing;
struct FlightSnapshot;

/// The wall-clock instrumentation substrate: counters, gauges and
/// fixed-bucket histograms, recorded into per-rank shards and merged
/// deterministically at run end.
///
/// Threading model: every swmpi rank (a thread) records into its own shard,
/// but a few cross-thread writers exist (a sender observing the receiver's
/// queue), so all primitives are atomic with relaxed ordering — recording
/// is wait-free and never takes a lock on the hot path. Name lookup is the
/// slow path (mutex + map); callers on hot paths resolve a Counter* /
/// Histogram* handle once and reuse it.
///
/// Determinism: merged() folds shards in ascending rank order and names in
/// sorted order, so two registries fed the same per-shard values produce
/// byte-identical snapshots regardless of recording interleavings (counter
/// adds commute; histogram bucket counts are integers).

/// Monotonically increasing 64-bit counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value plus the running maximum (e.g. mailbox queue depth).
///
/// A gauge that was never set is distinguishable from one set to 0: sets()
/// counts recordings, and max_ starts at the INT64_MIN sentinel so the
/// running maximum is correct even when every recorded value is negative.
/// merged() skips never-set gauges entirely instead of folding their
/// zero-initialized state into real recordings.
class Gauge {
 public:
  void set(std::int64_t v) {
    last_.store(v, std::memory_order_relaxed);
    std::int64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
    sets_.fetch_add(1, std::memory_order_relaxed);
  }
  std::int64_t last() const { return last_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t sets() const { return sets_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> last_{0};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
  std::atomic<std::uint64_t> sets_{0};
};

/// Fixed power-of-two buckets spanning [2^-26, 2^22) — fine enough for
/// sub-microsecond collective latencies (seconds) and wide enough for tile
/// sizes (sample counts). Bucket b holds values v with
/// upper_bound(b-1) <= v < upper_bound(b); bucket 0 additionally catches
/// everything below the range, the last bucket everything above.
inline constexpr int kHistogramBuckets = 48;
inline constexpr int kHistogramMinExp = -26;  ///< bucket 0 bound: 2^-26

/// Upper bound of bucket `b` (exclusive), as a double.
double histogram_bucket_bound(int b);

class Histogram {
 public:
  void observe(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// The swmpi collective kinds the fast-path instrumentation distinguishes.
/// Composite collectives also tick their building blocks (allreduce counts
/// one reduce and one bcast too) — the counters describe traffic at every
/// layer, not a disjoint partition of it.
enum class CollectiveKind : int {
  kBarrier = 0,
  kBcast,
  kReduce,
  kAllreduce,
  kAllgather,
  kGather,
  kScatter,
  kAlltoall,
  kSendrecv,
  kReduceScatter,
  kReduceScatterRanges,
  kAllgatherv,
  kScan,
};
inline constexpr int kCollectiveKindCount = 13;
const char* collective_name(CollectiveKind kind);

/// Per-kind ledger: entry count, payload bytes, wall latency distribution.
struct CollectiveStats {
  Counter calls;
  Counter bytes;
  Histogram wall_s;
};

/// One rank's metrics. The fixed members are the O(1) hot paths (swmpi
/// collectives, point-to-point traffic); named metrics go through the
/// mutex-backed maps and should be resolved to handles outside loops.
class MetricsShard {
 public:
  MetricsShard();
  ~MetricsShard();
  MetricsShard(const MetricsShard&) = delete;
  MetricsShard& operator=(const MetricsShard&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// The rank's flight-recorder ring, or nullptr when the registry was not
  /// armed (MetricsRegistry::arm_flight). Hot paths resolve this once,
  /// alongside the shard itself.
  FlightRing* flight() { return flight_.get(); }
  const FlightRing* flight() const { return flight_.get(); }

  CollectiveStats& collective(CollectiveKind kind) {
    return collectives_[static_cast<std::size_t>(kind)];
  }

  /// Point-to-point / mailbox fast paths. The send ledgers count only
  /// *delivered* traffic; sends consumed by an injected blackhole land in
  /// p2p_dropped instead.
  Counter p2p_sends;
  Counter p2p_send_bytes;
  Counter p2p_dropped;         ///< sends swallowed by FaultPlan blackholes
  Counter send_ring_waits;     ///< sends that waited on a full SPSC lane
  Counter recv_parks;          ///< recvs that fell past the spin budget to
                               ///< the mailbox's condvar slow path
  Histogram recv_stall_s;      ///< wall seconds blocked in a recv
  Gauge recv_queue_depth;      ///< pending messages seen at recv entry

 private:
  friend class MetricsRegistry;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::array<CollectiveStats, kCollectiveKindCount> collectives_;
  std::unique_ptr<FlightRing> flight_;
};

/// One merged histogram: total count/sum plus the non-empty buckets in
/// ascending bound order.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0;
  /// (exclusive upper bound, count) for every non-empty bucket.
  std::vector<std::pair<double, std::uint64_t>> buckets;
};

struct GaugeSnapshot {
  std::int64_t last = 0;     ///< from the highest-rank shard that set it
  std::int64_t max = 0;      ///< max across shards that set it
  std::uint64_t sets = 0;    ///< total recordings across shards
};

/// Deterministic merge of all shards: counters sum, gauge maxima combine
/// by max, histograms add bucket-wise. The swmpi fast-path ledgers are
/// flattened into the named maps ("swmpi.allreduce.calls", ...). std::map
/// keeps names sorted, so iteration — and the JSON rendering — is stable.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  std::uint64_t counter_or_zero(std::string_view name) const;
  void write_json(util::JsonWriter& w) const;  ///< one JSON object
};

/// Shard owner. shard(rank) lazily creates; addresses are stable for the
/// registry's lifetime, so ranks cache the reference. kHostRank is the
/// shard for host-side (non-SPMD) recorders like the RecoveryDriver.
class MetricsRegistry {
 public:
  static constexpr int kHostRank = -1;

  MetricsShard& shard(int rank);
  MetricsShard& host_shard() { return shard(kHostRank); }
  std::size_t shard_count() const;

  MetricsSnapshot merged() const;

  /// Arm the flight recorder: every existing shard gets a ring of
  /// `ring_events` slots timestamped against `epoch`, and shards created
  /// later are born with one. Idempotent arming happens once, before
  /// run_spmd, so rank threads only ever see an armed-or-not registry.
  void arm_flight(std::size_t ring_events,
                  std::chrono::steady_clock::time_point epoch);
  bool flight_armed() const;

  /// Every shard's retained flight events, ascending rank order (the host
  /// shard's kHostRank sorts first). Quiescent callers only — see
  /// FlightRing::snapshot().
  std::vector<FlightSnapshot> flight_snapshots() const;

 private:
  mutable std::mutex mutex_;
  std::map<int, std::unique_ptr<MetricsShard>> shards_;
  std::size_t flight_ring_events_ = 0;  ///< 0 = not armed
  std::chrono::steady_clock::time_point flight_epoch_{};
};

}  // namespace swhkm::telemetry
