#include "telemetry/registry.hpp"

#include <cmath>

#include "telemetry/flight_recorder.hpp"
#include "util/json.hpp"

namespace swhkm::telemetry {

// Out of line: FlightRing is incomplete where the header declares the
// unique_ptr member.
MetricsShard::MetricsShard() = default;
MetricsShard::~MetricsShard() = default;

double histogram_bucket_bound(int b) {
  return std::ldexp(1.0, kHistogramMinExp + b + 1);
}

void Histogram::observe(double v) {
  int b = 0;
  if (v > 0) {
    int exp = 0;
    (void)std::frexp(v, &exp);  // v = mantissa * 2^exp, mantissa in [0.5, 1)
    // v < 2^exp <= bound(exp - 1 - kHistogramMinExp); clamp into range.
    b = exp - 1 - kHistogramMinExp;
    if (b < 0) {
      b = 0;
    } else if (b >= kHistogramBuckets) {
      b = kHistogramBuckets - 1;
    }
  }
  buckets_[static_cast<std::size_t>(b)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

const char* collective_name(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kBarrier:
      return "barrier";
    case CollectiveKind::kBcast:
      return "bcast";
    case CollectiveKind::kReduce:
      return "reduce";
    case CollectiveKind::kAllreduce:
      return "allreduce";
    case CollectiveKind::kAllgather:
      return "allgather";
    case CollectiveKind::kGather:
      return "gather";
    case CollectiveKind::kScatter:
      return "scatter";
    case CollectiveKind::kAlltoall:
      return "alltoall";
    case CollectiveKind::kSendrecv:
      return "sendrecv";
    case CollectiveKind::kReduceScatter:
      return "reduce_scatter";
    case CollectiveKind::kReduceScatterRanges:
      return "reduce_scatter_ranges";
    case CollectiveKind::kAllgatherv:
      return "allgatherv";
    case CollectiveKind::kScan:
      return "scan";
  }
  return "unknown";
}

Counter& MetricsShard::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsShard::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsShard::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsShard& MetricsRegistry::shard(int rank) {
  std::lock_guard lock(mutex_);
  auto it = shards_.find(rank);
  if (it == shards_.end()) {
    it = shards_.emplace(rank, std::make_unique<MetricsShard>()).first;
    if (flight_ring_events_ > 0) {
      it->second->flight_ =
          std::make_unique<FlightRing>(flight_ring_events_, flight_epoch_);
    }
  }
  return *it->second;
}

std::size_t MetricsRegistry::shard_count() const {
  std::lock_guard lock(mutex_);
  return shards_.size();
}

void MetricsRegistry::arm_flight(
    std::size_t ring_events, std::chrono::steady_clock::time_point epoch) {
  std::lock_guard lock(mutex_);
  if (ring_events == 0 || flight_ring_events_ > 0) {
    return;
  }
  flight_ring_events_ = ring_events;
  flight_epoch_ = epoch;
  for (auto& [rank, shard] : shards_) {
    (void)rank;
    if (shard->flight_ == nullptr) {
      shard->flight_ = std::make_unique<FlightRing>(ring_events, epoch);
    }
  }
}

bool MetricsRegistry::flight_armed() const {
  std::lock_guard lock(mutex_);
  return flight_ring_events_ > 0;
}

std::vector<FlightSnapshot> MetricsRegistry::flight_snapshots() const {
  std::lock_guard lock(mutex_);
  std::vector<FlightSnapshot> out;
  out.reserve(shards_.size());
  // std::map iterates ranks ascending (kHostRank = -1 first).
  for (const auto& [rank, shard] : shards_) {
    if (shard->flight_ == nullptr) {
      continue;
    }
    FlightSnapshot snap;
    snap.rank = rank;
    snap.total = shard->flight_->total();
    snap.events = shard->flight_->snapshot();
    out.push_back(std::move(snap));
  }
  return out;
}

namespace {

void merge_histogram(HistogramSnapshot& into, const Histogram& h) {
  into.count += h.count();
  into.sum += h.sum();
  // Accumulate into a dense scratch keyed by bucket index via the bound:
  // rebuild the sparse vector afterwards to keep it sorted and non-empty.
  std::array<std::uint64_t, kHistogramBuckets> dense{};
  for (const auto& [bound, count] : into.buckets) {
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (bound == histogram_bucket_bound(b)) {
        dense[static_cast<std::size_t>(b)] = count;
        break;
      }
    }
  }
  for (int b = 0; b < kHistogramBuckets; ++b) {
    dense[static_cast<std::size_t>(b)] += h.bucket(b);
  }
  into.buckets.clear();
  for (int b = 0; b < kHistogramBuckets; ++b) {
    if (dense[static_cast<std::size_t>(b)] > 0) {
      into.buckets.emplace_back(histogram_bucket_bound(b),
                                dense[static_cast<std::size_t>(b)]);
    }
  }
}

void merge_gauge(GaugeSnapshot& into, const Gauge& g) {
  // A shard whose gauge was never set contributes nothing: folding its
  // zero-initialized last/max would clobber a lower-rank shard's real last
  // with 0 and mask negative maxima (the sentinel-vs-0 ambiguity). Callers
  // guard map insertion on g.sets() too, so a never-set gauge leaves no
  // snapshot entry at all.
  if (g.sets() == 0) {
    return;
  }
  if (into.sets == 0) {
    into.max = g.max();
  } else {
    into.max = std::max(into.max, g.max());
  }
  into.last = g.last();
  into.sets += g.sets();
}

}  // namespace

std::uint64_t MetricsSnapshot::counter_or_zero(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

MetricsSnapshot MetricsRegistry::merged() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  // std::map iterates ranks ascending — the deterministic fold order.
  for (const auto& [rank, shard] : shards_) {
    (void)rank;
    std::lock_guard shard_lock(shard->mutex_);
    for (const auto& [name, c] : shard->counters_) {
      snap.counters[name] += c->value();
    }
    for (const auto& [name, g] : shard->gauges_) {
      if (g->sets() > 0) {
        merge_gauge(snap.gauges[name], *g);
      }
    }
    for (const auto& [name, h] : shard->histograms_) {
      merge_histogram(snap.histograms[name], *h);
    }
    for (int k = 0; k < kCollectiveKindCount; ++k) {
      const CollectiveStats& cs =
          shard->collectives_[static_cast<std::size_t>(k)];
      if (cs.calls.value() == 0) {
        continue;
      }
      const std::string base =
          std::string("swmpi.") +
          collective_name(static_cast<CollectiveKind>(k));
      snap.counters[base + ".calls"] += cs.calls.value();
      snap.counters[base + ".bytes"] += cs.bytes.value();
      merge_histogram(snap.histograms[base + ".wall_s"], cs.wall_s);
    }
    if (shard->p2p_sends.value() > 0) {
      snap.counters["swmpi.send.calls"] += shard->p2p_sends.value();
      snap.counters["swmpi.send.bytes"] += shard->p2p_send_bytes.value();
    }
    // Dropped sends and wait events flatten independently of the delivered
    // ledger — a rank can drop or stall without ever delivering a byte.
    if (shard->p2p_dropped.value() > 0) {
      snap.counters["swmpi.send.dropped"] += shard->p2p_dropped.value();
    }
    if (shard->send_ring_waits.value() > 0) {
      snap.counters["swmpi.send.ring_waits"] += shard->send_ring_waits.value();
    }
    if (shard->recv_parks.value() > 0) {
      snap.counters["swmpi.recv.parks"] += shard->recv_parks.value();
    }
    if (shard->recv_stall_s.count() > 0) {
      merge_histogram(snap.histograms["swmpi.recv.stall_s"],
                      shard->recv_stall_s);
      if (shard->recv_queue_depth.sets() > 0) {
        merge_gauge(snap.gauges["swmpi.recv.queue_depth"],
                    shard->recv_queue_depth);
      }
    }
  }
  return snap;
}

void MetricsSnapshot::write_json(util::JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) {
    w.kv(name, v);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges) {
    w.key(name).begin_object();
    w.kv("last", g.last);
    w.kv("max", g.max);
    w.kv("sets", g.sets);
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.key("buckets").begin_array();
    for (const auto& [bound, count] : h.buckets) {
      w.begin_object();
      w.kv("le", bound);
      w.kv("count", count);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace swhkm::telemetry
