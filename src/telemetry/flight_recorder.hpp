#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace swhkm::util {
class JsonWriter;
}

namespace swhkm::telemetry {

/// Per-rank flight recorder: a fixed-size ring of compact events that is
/// always cheap to write (one relaxed index bump plus a struct store, no
/// locks, no allocation after construction) and survives a dead SPMD leg —
/// the rings live in the MetricsRegistry's shards, which the RecoveryDriver
/// still holds after run_spmd unwound. On a fault the last events of every
/// rank become the postmortem in report_faults.json; on a clean run they
/// are simply dropped (the ring is diagnosis storage, not an artifact the
/// exporters always emit).
///
/// Like every other telemetry primitive, recording is read-only with
/// respect to algorithm state: results are bit-identical with the recorder
/// armed or not (tested in test_critical_path.cpp).

enum class FlightEventKind : std::uint8_t {
  kIterationStart = 0,  ///< engine loop head; sim_s = rank clock at entry
  kIterationEnd,        ///< after the tally combine; sim_s = advanced clock
  kTileStart,           ///< assign span staged; a/b = [sample t0, t1)
  kTileEnd,             ///< assign span retired (combine drained + merged)
  kCollectiveEnter,     ///< op = CollectiveKind, a = payload bytes
  kCollectiveExit,      ///< op = CollectiveKind, a = bytes, b = wall µs
  kMailboxPark,         ///< recv fell past the spin budget; a = tag
  kMailboxWake,         ///< parked recv woke; a = tag, b = stalled µs
  kCheckpointLeg,       ///< RecoveryDriver leg committed; a = leg iterations
  kFault,               ///< RecoveryDriver caught a RuntimeFault; op = 1 SDC
};
inline constexpr int kFlightEventKindCount = 10;
const char* flight_event_kind_name(FlightEventKind kind);

/// One compact event. `wall_us` is microseconds since the owning session's
/// steady-clock epoch (the same axis WallSpans use); `sim_s` is the
/// modeled rank clock where the recording site knows it (engine iteration
/// edges) and -1 where it doesn't (swmpi has no modeled clock). `a`/`b`
/// are kind-specific payloads — see FlightEventKind.
struct FlightEvent {
  double wall_us = 0;
  double sim_s = -1;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint32_t iteration = 0;
  std::uint16_t op = 0;
  FlightEventKind kind = FlightEventKind::kIterationStart;
};

/// Wait-free single-writer ring. Each ring belongs to exactly one rank
/// (its MetricsShard), and only that rank's thread records into it; the
/// write path is an index load, a struct store and an index store, all
/// relaxed. snapshot() is for quiescent readers only — after run_spmd
/// joined (clean exit or the RecoveryDriver's catch block), where thread
/// join / exception propagation provides the happens-before edge.
class FlightRing {
 public:
  FlightRing(std::size_t capacity,
             std::chrono::steady_clock::time_point epoch);

  /// Microseconds since the session epoch, on the recorder's own axis.
  double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void record(FlightEventKind kind, std::uint32_t iteration,
              std::uint16_t op = 0, std::uint64_t a = 0, std::uint64_t b = 0,
              double sim_s = -1.0) {
    record_at(now_us(), kind, iteration, op, a, b, sim_s);
  }

  /// Record with an explicit timestamp — for sites that only learn an
  /// event happened after the fact (a park is observed at wake time).
  void record_at(double wall_us, FlightEventKind kind, std::uint32_t iteration,
                 std::uint16_t op = 0, std::uint64_t a = 0,
                 std::uint64_t b = 0, double sim_s = -1.0) {
    const std::uint64_t slot = head_.load(std::memory_order_relaxed);
    FlightEvent& e = events_[slot % events_.size()];
    e.wall_us = wall_us;
    e.sim_s = sim_s;
    e.a = a;
    e.b = b;
    e.iteration = iteration;
    e.op = op;
    e.kind = kind;
    head_.store(slot + 1, std::memory_order_relaxed);
  }

  std::size_t capacity() const { return events_.size(); }

  /// Total events ever recorded (>= capacity means the ring wrapped).
  std::uint64_t total() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// The retained events, oldest first. Quiescent readers only (see class
  /// comment).
  std::vector<FlightEvent> snapshot() const;

 private:
  std::vector<FlightEvent> events_;
  std::atomic<std::uint64_t> head_{0};
  std::chrono::steady_clock::time_point epoch_;
};

/// One rank's retained events at snapshot time. `rank` is the global rank
/// (MetricsRegistry::kHostRank for the RecoveryDriver's host ring),
/// `total` the lifetime event count (how much history the ring dropped).
struct FlightSnapshot {
  int rank = 0;
  std::uint64_t total = 0;
  std::vector<FlightEvent> events;
};

/// One fault's postmortem: every rank's last events, captured by the
/// RecoveryDriver the moment it caught the RuntimeFault — before any
/// retry overwrites the rings.
struct FaultPostmortem {
  std::uint32_t iteration = 0;  ///< global iteration the leg started at
  std::string what;             ///< the fault's message
  std::vector<FlightSnapshot> ranks;
};

/// JSON array of per-rank snapshots: [{"rank", "total_events", "events":
/// [{"kind", "wall_us", ...}]}].
void write_flight_snapshots(util::JsonWriter& w,
                            const std::vector<FlightSnapshot>& ranks);

/// JSON array of postmortems — the "flight_recorder" section of
/// report_faults.json.
void write_postmortems(util::JsonWriter& w,
                       const std::vector<FaultPostmortem>& postmortems);

}  // namespace swhkm::telemetry
