#include "telemetry/critical_path.hpp"

#include <algorithm>
#include <map>

#include "util/json.hpp"

namespace swhkm::telemetry {

namespace {

struct CgPhases {
  double phase_s[simarch::kPhaseCount] = {};
  double phase_start[simarch::kPhaseCount];  ///< start of the winning event
  bool seen[simarch::kPhaseCount] = {};
  double start_s = 0;
  double end_s = 0;
  bool any = false;

  double total() const {
    double t = 0;
    // CostTally::total_s() field order — keep the sum order identical so
    // a reconstructed total matches the engines' combined.total_s() bits.
    for (int p = 0; p < simarch::kPhaseCount; ++p) {
      t += phase_s[p];
    }
    return t;
  }
};

}  // namespace

CriticalPathReport analyze_critical_path(const simarch::Trace& trace,
                                         std::size_t top_n) {
  // iteration -> cg -> latest-attempt phase durations. std::map keeps both
  // levels sorted, making the whole analysis deterministic.
  std::map<std::uint32_t, std::map<std::uint32_t, CgPhases>> iters;
  for (const simarch::TraceEvent& e : trace.events()) {
    CgPhases& cg = iters[e.iteration][e.cg];
    const int p = static_cast<int>(e.phase);
    // Replayed iterations (recovery legs) re-record the same phase; the
    // latest recording — largest start — is the attempt that committed.
    if (!cg.seen[p] || e.start_s >= cg.phase_start[p]) {
      cg.phase_s[p] = e.duration_s;
      cg.phase_start[p] = e.start_s;
      cg.seen[p] = true;
    }
  }
  // Second pass for the flow anchors: the retained events' extent per cg.
  for (auto& [iter, cgs] : iters) {
    (void)iter;
    for (auto& [cg_id, cg] : cgs) {
      (void)cg_id;
      for (int p = 0; p < simarch::kPhaseCount; ++p) {
        if (!cg.seen[p]) {
          continue;
        }
        const double end = cg.phase_start[p] + cg.phase_s[p];
        if (!cg.any || cg.phase_start[p] < cg.start_s) {
          cg.start_s = cg.phase_start[p];
        }
        if (!cg.any || end > cg.end_s) {
          cg.end_s = end;
        }
        cg.any = true;
      }
    }
  }

  CriticalPathReport report;
  std::map<std::uint32_t, StragglerEntry> blame;
  for (const auto& [iteration, cgs] : iters) {
    IterationCriticalPath row;
    row.iteration = iteration;
    double sum_totals = 0;
    bool first = true;
    for (const auto& [cg_id, cg] : cgs) {
      const double total = cg.total();
      sum_totals += total;
      if (first || total > row.gating_rank_s) {
        row.gating_cg = cg_id;
        row.gating_rank_s = total;
      }
      for (int p = 0; p < simarch::kPhaseCount; ++p) {
        if (cg.phase_s[p] > row.phase_s[p]) {
          row.phase_s[p] = cg.phase_s[p];
          row.phase_cg[p] = cg_id;
        }
      }
      if (cg.any) {
        if (first || cg.start_s < row.start_s) {
          row.start_s = cg.start_s;
        }
        if (first || cg.end_s > row.end_s) {
          row.end_s = cg.end_s;
        }
      }
      first = false;
    }
    for (int p = 0; p < simarch::kPhaseCount; ++p) {
      row.critical_s += row.phase_s[p];
    }
    row.mean_rank_s = cgs.empty()
                          ? 0.0
                          : sum_totals / static_cast<double>(cgs.size());
    row.blame_s = row.gating_rank_s - row.mean_rank_s;
    row.imbalance =
        row.mean_rank_s > 0 ? row.gating_rank_s / row.mean_rank_s : 1.0;

    report.total_critical_s += row.critical_s;
    report.total_blame_s += row.blame_s;
    StragglerEntry& entry = blame[row.gating_cg];
    entry.cg = row.gating_cg;
    entry.gated_iterations += 1;
    entry.blame_s += row.blame_s;
    report.iterations.push_back(row);
  }

  for (const auto& [cg, entry] : blame) {
    (void)cg;
    report.stragglers.push_back(entry);
  }
  std::sort(report.stragglers.begin(), report.stragglers.end(),
            [](const StragglerEntry& a, const StragglerEntry& b) {
              if (a.blame_s != b.blame_s) {
                return a.blame_s > b.blame_s;
              }
              return a.cg < b.cg;
            });
  if (report.stragglers.size() > top_n) {
    report.stragglers.resize(top_n);
  }
  if (report.total_blame_s > 0) {
    for (StragglerEntry& entry : report.stragglers) {
      entry.share = entry.blame_s / report.total_blame_s;
    }
  }
  return report;
}

void write_critical_path(util::JsonWriter& w, const CriticalPathReport& r) {
  w.begin_object();
  w.kv("total_critical_s", r.total_critical_s);
  w.kv("total_blame_s", r.total_blame_s);
  w.key("iterations").begin_array();
  for (const IterationCriticalPath& it : r.iterations) {
    w.begin_object();
    w.kv("iteration", static_cast<std::uint64_t>(it.iteration));
    w.kv("gating_cg", static_cast<std::uint64_t>(it.gating_cg));
    w.kv("critical_s", it.critical_s);
    w.kv("gating_rank_s", it.gating_rank_s);
    w.kv("mean_rank_s", it.mean_rank_s);
    w.kv("blame_s", it.blame_s);
    w.kv("imbalance", it.imbalance);
    w.key("phases").begin_object();
    for (int p = 0; p < simarch::kPhaseCount; ++p) {
      w.key(simarch::phase_name(static_cast<simarch::Phase>(p)))
          .begin_object();
      w.kv("seconds", it.phase_s[p]);
      w.kv("cg", static_cast<std::uint64_t>(it.phase_cg[p]));
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("stragglers").begin_array();
  for (const StragglerEntry& s : r.stragglers) {
    w.begin_object();
    w.kv("cg", static_cast<std::uint64_t>(s.cg));
    w.kv("gated_iterations", static_cast<std::uint64_t>(s.gated_iterations));
    w.kv("blame_s", s.blame_s);
    w.kv("share", s.share);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace swhkm::telemetry
