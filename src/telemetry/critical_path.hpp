#pragma once

#include <cstdint>
#include <vector>

#include "simarch/trace.hpp"

namespace swhkm::util {
class JsonWriter;
}

namespace swhkm::telemetry {

/// Post-run critical-path attribution over the simulated-time Trace.
///
/// The engines' combine_tallies folds per-rank tallies with a per-field
/// maximum — "each phase takes as long as its slowest rank" — and every
/// rank advances its clock by the folded total, so the modeled iteration
/// time IS the per-phase-maximum sum. The analyzer reconstructs that fold
/// from the Trace's per-rank phase intervals: per iteration it takes each
/// phase's maximum across core groups (the same doubles, the same max,
/// the same sum order as CostTally::total_s()), which is why
/// `critical_s == IterationStats::simulated_s` holds bit-for-bit on a
/// clean run — the acceptance cross-check in bench/wallclock_engines.
///
/// Blame is charged per iteration to the *gating* rank — the core group
/// with the largest per-rank total — as (gating − mean) rank-seconds: the
/// time the barrier would have returned earlier had the straggler matched
/// the average. Summed across iterations this yields the straggler table.

/// One iteration's attribution.
struct IterationCriticalPath {
  std::uint32_t iteration = 0;
  std::uint32_t gating_cg = 0;   ///< largest per-rank total (lowest cg wins ties)
  double critical_s = 0;         ///< sum of per-phase maxima == modeled iter time
  double gating_rank_s = 0;      ///< the gating rank's own total
  double mean_rank_s = 0;        ///< mean per-rank total
  double blame_s = 0;            ///< gating_rank_s - mean_rank_s
  double imbalance = 1.0;        ///< gating_rank_s / mean_rank_s (1.0 degenerate)
  double start_s = 0;            ///< earliest event start (flow-edge anchor)
  double end_s = 0;              ///< latest event end (flow-edge anchor)
  double phase_s[simarch::kPhaseCount] = {};        ///< per-phase maxima
  std::uint32_t phase_cg[simarch::kPhaseCount] = {};  ///< who set each maximum
};

/// One row of the straggler table: a core group's aggregate blame.
struct StragglerEntry {
  std::uint32_t cg = 0;
  std::uint32_t gated_iterations = 0;  ///< iterations this cg gated
  double blame_s = 0;                  ///< summed (gating - mean) seconds
  double share = 0;                    ///< blame_s / total blame (0 if none)
};

struct CriticalPathReport {
  std::vector<IterationCriticalPath> iterations;  ///< ascending iteration
  std::vector<StragglerEntry> stragglers;  ///< blame desc, top-N, cg-asc ties
  double total_critical_s = 0;             ///< sum of critical_s
  double total_blame_s = 0;                ///< sum of blame_s (all cgs, pre-top-N)
};

/// Analyze a run's Trace. When recovery replayed iterations the trace
/// holds several recordings of the same (cg, iteration, phase); the latest
/// (largest start) wins — the postmortem describes the attempt that
/// actually committed. `top_n` bounds the straggler table only; blame
/// totals cover every core group.
CriticalPathReport analyze_critical_path(const simarch::Trace& trace,
                                         std::size_t top_n = 8);

/// JSON object: {"iterations": [...], "stragglers": [...], totals}.
void write_critical_path(util::JsonWriter& w, const CriticalPathReport& r);

}  // namespace swhkm::telemetry
