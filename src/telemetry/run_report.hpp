#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "core/kmeans.hpp"
#include "core/recovery.hpp"
#include "simarch/trace.hpp"
#include "telemetry/critical_path.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/registry.hpp"

namespace swhkm::telemetry {

/// One run's machine-readable record: what was asked for (config + shape +
/// topology), what happened (iteration history, convergence, faults) and
/// what the wall-clock instrumentation saw (merged metrics snapshot). One
/// JSON file per run, next to trace.json — together they are the full
/// observability artifact set.
struct RunReport {
  std::string run_id;  ///< caller-chosen label ("smoke-level3", ...)

  // Workload + configuration.
  core::ProblemShape shape;
  core::Level level = core::Level::kLevel3;
  core::KmeansConfig config;       ///< pointers inside are not serialized
  std::string machine_summary;     ///< simarch::MachineConfig::summary()
  std::string plan_summary;        ///< core::PartitionPlan::describe()

  // Outcome.
  std::size_t iterations = 0;
  bool converged = false;
  std::size_t empty_clusters = 0;
  double inertia = 0;
  std::vector<core::IterationStats> history;

  // Fault / recovery story (empty for clean runs).
  std::vector<simarch::FaultMarker> faults;
  bool has_recovery = false;
  core::RecoveryReport recovery;

  // Cross-rank critical-path attribution (analyze_critical_path over the
  // run's Trace): per-iteration gating rank + phase split and the
  // straggler blame table. Serialized as the "critical_path" section.
  bool has_critical_path = false;
  CriticalPathReport critical_path;

  // Fault forensics: every rank's last flight-recorder events at each
  // caught fault (RecoveryDriver::postmortems). Serialized as the
  // "flight_recorder" section — always present when has_recovery, so a
  // faults report is self-describing even when no postmortem was captured.
  std::vector<FaultPostmortem> postmortems;

  // Merged wall-clock metrics.
  MetricsSnapshot metrics;

  /// Convenience: fill the outcome block from a finished run.
  void set_result(const core::KmeansResult& result);

  /// Pretty-printed JSON (stable key order; doubles round-trip).
  void write_json(std::ostream& out) const;
};

/// Cross-check the report against itself: the per-iteration simulated
/// traffic in `history` must sum to the engine-recorded "sim.net_bytes" /
/// "sim.dma_bytes" counters in the metrics snapshot — one number computed
/// two independent ways (per-iteration stats on rank 0 vs the registry).
/// Vacuously true when the snapshot has no such counters (telemetry off).
bool reconciles(const RunReport& report);

}  // namespace swhkm::telemetry
