#include "telemetry/export.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>

#include "util/json.hpp"

namespace swhkm::telemetry {

namespace {

constexpr int kSimPid = 0;
constexpr int kWallPid = 1;

void write_metadata(util::JsonWriter& w, int pid, int tid, const char* which,
                    const std::string& name) {
  w.begin_object();
  w.kv("name", which);
  w.kv("ph", "M");
  w.kv("pid", pid);
  w.kv("tid", tid);
  w.key("args").begin_object();
  w.kv("name", std::string_view(name));
  w.end_object();
  w.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& out, const simarch::Trace* sim,
                        const SpanSink* wall,
                        std::span<const simarch::FaultMarker> faults,
                        const CriticalPathReport* critical_path) {
  std::vector<simarch::TraceEvent> sim_events;
  if (sim != nullptr) {
    sim_events = sim->events();
  }
  std::vector<WallSpan> wall_spans;
  if (wall != nullptr) {
    wall_spans = wall->spans();
  }

  // Earliest simulated start per iteration, to pin fault instants onto the
  // timeline they interrupted.
  std::map<std::uint32_t, double> iteration_start_s;
  std::set<int> sim_tids;
  for (const auto& e : sim_events) {
    sim_tids.insert(static_cast<int>(e.cg));
    auto [it, inserted] = iteration_start_s.try_emplace(e.iteration, e.start_s);
    if (!inserted) {
      it->second = std::min(it->second, e.start_s);
    }
  }
  std::set<int> wall_tids;
  for (const auto& s : wall_spans) {
    wall_tids.insert(static_cast<int>(s.rank));
  }

  util::JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents").begin_array();

  if (!sim_events.empty() || !faults.empty()) {
    write_metadata(w, kSimPid, 0, "process_name", "simulated machine");
  }
  for (int tid : sim_tids) {
    write_metadata(w, kSimPid, tid, "thread_name",
                   "cg " + std::to_string(tid));
  }
  if (!wall_spans.empty()) {
    write_metadata(w, kWallPid, 0, "process_name", "wall clock");
  }
  for (int tid : wall_tids) {
    write_metadata(w, kWallPid, tid, "thread_name",
                   "rank " + std::to_string(tid));
  }

  for (const auto& e : sim_events) {
    w.begin_object();
    w.kv("name", simarch::phase_name(e.phase));
    w.kv("cat", "sim");
    w.kv("ph", "X");
    w.kv("ts", e.start_s * 1e6);       // simulated seconds -> trace µs
    w.kv("dur", e.duration_s * 1e6);
    w.kv("pid", kSimPid);
    w.kv("tid", static_cast<int>(e.cg));
    w.key("args").begin_object();
    w.kv("iteration", e.iteration);
    w.end_object();
    w.end_object();
  }

  for (const auto& f : faults) {
    const auto it = iteration_start_s.find(f.iteration);
    const double ts_us =
        it != iteration_start_s.end() ? it->second * 1e6 : 0.0;
    w.begin_object();
    w.kv("name", "fault");
    w.kv("cat", "fault");
    w.kv("ph", "i");
    w.kv("s", "g");  // global scope: draw the line across all tracks
    w.kv("ts", ts_us);
    w.kv("pid", kSimPid);
    w.kv("tid", 0);
    w.key("args").begin_object();
    w.kv("iteration", f.iteration);
    w.kv("what", std::string_view(f.what));
    w.kv("recover_wall_s", f.wall_s);
    w.end_object();
    w.end_object();
  }

  // The critical path drawn as flow arrows: iteration i's arrow starts at
  // its end on the gating cg's track and binds to the enclosing slice at
  // iteration i+1's start on the next gating track ("bp":"e" — the Chrome
  // trace format's bind-to-enclosing-slice flag, required for the finish
  // step to attach to the "X" interval it lands inside).
  if (critical_path != nullptr) {
    const auto& iters = critical_path->iterations;
    for (std::size_t i = 0; i + 1 < iters.size(); ++i) {
      const auto& from = iters[i];
      const auto& to = iters[i + 1];
      const std::uint64_t flow_id = static_cast<std::uint64_t>(i) + 1;
      w.begin_object();
      w.kv("name", "critical_path");
      w.kv("cat", "critical_path");
      w.kv("ph", "s");
      w.kv("id", flow_id);
      w.kv("ts", from.end_s * 1e6);
      w.kv("pid", kSimPid);
      w.kv("tid", static_cast<int>(from.gating_cg));
      w.key("args").begin_object();
      w.kv("iteration", from.iteration);
      w.kv("blame_s", from.blame_s);
      w.end_object();
      w.end_object();
      w.begin_object();
      w.kv("name", "critical_path");
      w.kv("cat", "critical_path");
      w.kv("ph", "f");
      w.kv("bp", "e");
      w.kv("id", flow_id);
      w.kv("ts", to.start_s * 1e6);
      w.kv("pid", kSimPid);
      w.kv("tid", static_cast<int>(to.gating_cg));
      w.key("args").begin_object();
      w.kv("iteration", to.iteration);
      w.end_object();
      w.end_object();
    }
  }

  for (const auto& s : wall_spans) {
    w.begin_object();
    w.kv("name", std::string_view(s.name));
    w.kv("cat", "wall");
    w.kv("ph", "X");
    w.kv("ts", s.start_us);
    w.kv("dur", s.duration_us);
    w.kv("pid", kWallPid);
    w.kv("tid", static_cast<int>(s.rank));
    w.key("args").begin_object();
    w.kv("iteration", s.iteration);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  out << "\n";
}

}  // namespace swhkm::telemetry
