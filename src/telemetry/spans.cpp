#include "telemetry/spans.hpp"

namespace swhkm::telemetry {

void SpanSink::record(std::string_view name, std::uint32_t rank,
                      std::uint32_t iteration, double start_us,
                      double duration_us) {
  std::lock_guard lock(mutex_);
  spans_.push_back(
      WallSpan{std::string(name), rank, iteration, start_us, duration_us});
}

std::size_t SpanSink::size() const {
  std::lock_guard lock(mutex_);
  return spans_.size();
}

std::vector<WallSpan> SpanSink::spans() const {
  std::lock_guard lock(mutex_);
  return spans_;
}

void SpanSink::clear() {
  std::lock_guard lock(mutex_);
  spans_.clear();
}

}  // namespace swhkm::telemetry
