#!/usr/bin/env python3
"""Validate observability artifacts against the checked-in JSON schemas.

Pure-stdlib validator for the JSON-Schema subset the schemas/ directory
uses: type, properties, required, items, enum, minItems, and $ref into the
document-local #/$defs table. Deliberately not a full Draft 2020-12
implementation — CI must not need pip.

Usage:
    validate_artifacts.py <schema.json> <artifact.json> [<artifact.json>...]
    validate_artifacts.py --syntax <artifact.json> [...]   # JSON load only

Exit code 0 when every artifact validates; 1 on the first failure, with a
JSON-pointer-style path to the offending node.
"""

import json
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


class ValidationError(Exception):
    def __init__(self, path, message):
        super().__init__(f"{path or '/'}: {message}")


def _resolve(schema, root):
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise ValidationError("", f"unsupported $ref {ref!r}")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def _check(value, schema, root, path):
    schema = _resolve(schema, root)

    if "enum" in schema:
        if value not in schema["enum"]:
            raise ValidationError(path, f"{value!r} not in enum {schema['enum']}")
        return

    expected = schema.get("type")
    if expected is not None:
        py = _TYPES[expected]
        ok = isinstance(value, py)
        # bool is an int subclass in Python; don't let it pass for numbers.
        if ok and isinstance(value, bool) and expected in ("number", "integer"):
            ok = False
        if expected == "number" and isinstance(value, bool):
            ok = False
        if not ok:
            raise ValidationError(
                path, f"expected {expected}, got {type(value).__name__}")

    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                raise ValidationError(path, f"missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                _check(value[key], sub, root, f"{path}/{key}")

    if isinstance(value, list):
        if len(value) < schema.get("minItems", 0):
            raise ValidationError(
                path, f"{len(value)} items < minItems {schema['minItems']}")
        item_schema = schema.get("items")
        if item_schema is not None:
            for i, item in enumerate(value):
                _check(item, item_schema, root, f"{path}/{i}")


def validate(schema, artifact):
    _check(artifact, schema, schema, "")


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    syntax_only = argv[1] == "--syntax"
    schema = None
    artifacts = argv[2:]
    if not syntax_only:
        with open(argv[1]) as f:
            schema = json.load(f)
    for artifact_path in artifacts:
        try:
            with open(artifact_path) as f:
                artifact = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"FAIL {artifact_path}: {err}", file=sys.stderr)
            return 1
        if schema is not None:
            try:
                validate(schema, artifact)
            except ValidationError as err:
                print(f"FAIL {artifact_path}: {err}", file=sys.stderr)
                return 1
        print(f"ok {artifact_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
