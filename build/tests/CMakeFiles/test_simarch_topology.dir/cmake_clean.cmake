file(REMOVE_RECURSE
  "CMakeFiles/test_simarch_topology.dir/test_simarch_topology.cpp.o"
  "CMakeFiles/test_simarch_topology.dir/test_simarch_topology.cpp.o.d"
  "test_simarch_topology"
  "test_simarch_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simarch_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
