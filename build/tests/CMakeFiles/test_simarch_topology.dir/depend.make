# Empty dependencies file for test_simarch_topology.
# This may be replaced when dependencies are built.
