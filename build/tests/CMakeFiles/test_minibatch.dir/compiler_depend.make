# Empty compiler generated dependencies file for test_minibatch.
# This may be replaced when dependencies are built.
