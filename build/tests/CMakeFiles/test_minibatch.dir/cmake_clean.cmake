file(REMOVE_RECURSE
  "CMakeFiles/test_minibatch.dir/test_minibatch.cpp.o"
  "CMakeFiles/test_minibatch.dir/test_minibatch.cpp.o.d"
  "test_minibatch"
  "test_minibatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minibatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
