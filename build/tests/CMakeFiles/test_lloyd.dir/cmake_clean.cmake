file(REMOVE_RECURSE
  "CMakeFiles/test_lloyd.dir/test_lloyd.cpp.o"
  "CMakeFiles/test_lloyd.dir/test_lloyd.cpp.o.d"
  "test_lloyd"
  "test_lloyd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lloyd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
