file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_init.dir/test_parallel_init.cpp.o"
  "CMakeFiles/test_parallel_init.dir/test_parallel_init.cpp.o.d"
  "test_parallel_init"
  "test_parallel_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
