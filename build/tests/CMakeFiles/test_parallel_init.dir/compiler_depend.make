# Empty compiler generated dependencies file for test_parallel_init.
# This may be replaced when dependencies are built.
