file(REMOVE_RECURSE
  "CMakeFiles/test_machine_invariance.dir/test_machine_invariance.cpp.o"
  "CMakeFiles/test_machine_invariance.dir/test_machine_invariance.cpp.o.d"
  "test_machine_invariance"
  "test_machine_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
