# Empty dependencies file for test_machine_invariance.
# This may be replaced when dependencies are built.
