file(REMOVE_RECURSE
  "CMakeFiles/test_quality_metrics.dir/test_quality_metrics.cpp.o"
  "CMakeFiles/test_quality_metrics.dir/test_quality_metrics.cpp.o.d"
  "test_quality_metrics"
  "test_quality_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quality_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
