# Empty dependencies file for test_quality_metrics.
# This may be replaced when dependencies are built.
