# Empty compiler generated dependencies file for test_simarch_dma.
# This may be replaced when dependencies are built.
