file(REMOVE_RECURSE
  "CMakeFiles/test_simarch_dma.dir/test_simarch_dma.cpp.o"
  "CMakeFiles/test_simarch_dma.dir/test_simarch_dma.cpp.o.d"
  "test_simarch_dma"
  "test_simarch_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simarch_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
