# Empty compiler generated dependencies file for test_simarch_machine.
# This may be replaced when dependencies are built.
