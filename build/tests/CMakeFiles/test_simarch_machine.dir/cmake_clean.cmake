file(REMOVE_RECURSE
  "CMakeFiles/test_simarch_machine.dir/test_simarch_machine.cpp.o"
  "CMakeFiles/test_simarch_machine.dir/test_simarch_machine.cpp.o.d"
  "test_simarch_machine"
  "test_simarch_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simarch_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
