file(REMOVE_RECURSE
  "CMakeFiles/test_simarch_ldm.dir/test_simarch_ldm.cpp.o"
  "CMakeFiles/test_simarch_ldm.dir/test_simarch_ldm.cpp.o.d"
  "test_simarch_ldm"
  "test_simarch_ldm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simarch_ldm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
