# Empty compiler generated dependencies file for test_simarch_ldm.
# This may be replaced when dependencies are built.
