file(REMOVE_RECURSE
  "CMakeFiles/test_swmpi_extra.dir/test_swmpi_extra.cpp.o"
  "CMakeFiles/test_swmpi_extra.dir/test_swmpi_extra.cpp.o.d"
  "test_swmpi_extra"
  "test_swmpi_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swmpi_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
