# Empty dependencies file for test_swmpi_extra.
# This may be replaced when dependencies are built.
