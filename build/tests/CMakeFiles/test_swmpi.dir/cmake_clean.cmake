file(REMOVE_RECURSE
  "CMakeFiles/test_swmpi.dir/test_swmpi.cpp.o"
  "CMakeFiles/test_swmpi.dir/test_swmpi.cpp.o.d"
  "test_swmpi"
  "test_swmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
