# Empty compiler generated dependencies file for test_swmpi.
# This may be replaced when dependencies are built.
