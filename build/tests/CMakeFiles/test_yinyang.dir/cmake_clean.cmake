file(REMOVE_RECURSE
  "CMakeFiles/test_yinyang.dir/test_yinyang.cpp.o"
  "CMakeFiles/test_yinyang.dir/test_yinyang.cpp.o.d"
  "test_yinyang"
  "test_yinyang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yinyang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
