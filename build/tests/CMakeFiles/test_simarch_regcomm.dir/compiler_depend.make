# Empty compiler generated dependencies file for test_simarch_regcomm.
# This may be replaced when dependencies are built.
