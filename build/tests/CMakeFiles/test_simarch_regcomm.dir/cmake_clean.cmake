file(REMOVE_RECURSE
  "CMakeFiles/test_simarch_regcomm.dir/test_simarch_regcomm.cpp.o"
  "CMakeFiles/test_simarch_regcomm.dir/test_simarch_regcomm.cpp.o.d"
  "test_simarch_regcomm"
  "test_simarch_regcomm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simarch_regcomm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
