# Empty compiler generated dependencies file for test_normalize_checkpoint.
# This may be replaced when dependencies are built.
