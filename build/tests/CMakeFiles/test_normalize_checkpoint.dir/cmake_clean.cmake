file(REMOVE_RECURSE
  "CMakeFiles/test_normalize_checkpoint.dir/test_normalize_checkpoint.cpp.o"
  "CMakeFiles/test_normalize_checkpoint.dir/test_normalize_checkpoint.cpp.o.d"
  "test_normalize_checkpoint"
  "test_normalize_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_normalize_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
