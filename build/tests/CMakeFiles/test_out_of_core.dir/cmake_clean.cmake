file(REMOVE_RECURSE
  "CMakeFiles/test_out_of_core.dir/test_out_of_core.cpp.o"
  "CMakeFiles/test_out_of_core.dir/test_out_of_core.cpp.o.d"
  "test_out_of_core"
  "test_out_of_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_out_of_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
