file(REMOVE_RECURSE
  "CMakeFiles/test_data_image.dir/test_data_image.cpp.o"
  "CMakeFiles/test_data_image.dir/test_data_image.cpp.o.d"
  "test_data_image"
  "test_data_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
