# Empty dependencies file for test_data_image.
# This may be replaced when dependencies are built.
