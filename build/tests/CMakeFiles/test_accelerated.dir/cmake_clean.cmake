file(REMOVE_RECURSE
  "CMakeFiles/test_accelerated.dir/test_accelerated.cpp.o"
  "CMakeFiles/test_accelerated.dir/test_accelerated.cpp.o.d"
  "test_accelerated"
  "test_accelerated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accelerated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
