# Empty compiler generated dependencies file for test_accelerated.
# This may be replaced when dependencies are built.
