file(REMOVE_RECURSE
  "CMakeFiles/cluster_tool.dir/cluster_tool.cpp.o"
  "CMakeFiles/cluster_tool.dir/cluster_tool.cpp.o.d"
  "cluster_tool"
  "cluster_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
