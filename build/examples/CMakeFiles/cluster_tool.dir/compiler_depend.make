# Empty compiler generated dependencies file for cluster_tool.
# This may be replaced when dependencies are built.
