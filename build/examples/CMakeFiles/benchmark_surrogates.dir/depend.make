# Empty dependencies file for benchmark_surrogates.
# This may be replaced when dependencies are built.
