file(REMOVE_RECURSE
  "CMakeFiles/benchmark_surrogates.dir/benchmark_surrogates.cpp.o"
  "CMakeFiles/benchmark_surrogates.dir/benchmark_surrogates.cpp.o.d"
  "benchmark_surrogates"
  "benchmark_surrogates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_surrogates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
