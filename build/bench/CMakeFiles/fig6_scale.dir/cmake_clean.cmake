file(REMOVE_RECURSE
  "CMakeFiles/fig6_scale.dir/fig6_scale.cpp.o"
  "CMakeFiles/fig6_scale.dir/fig6_scale.cpp.o.d"
  "fig6_scale"
  "fig6_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
