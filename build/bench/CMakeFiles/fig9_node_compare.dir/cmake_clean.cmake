file(REMOVE_RECURSE
  "CMakeFiles/fig9_node_compare.dir/fig9_node_compare.cpp.o"
  "CMakeFiles/fig9_node_compare.dir/fig9_node_compare.cpp.o.d"
  "fig9_node_compare"
  "fig9_node_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_node_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
