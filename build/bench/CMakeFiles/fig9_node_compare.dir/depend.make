# Empty dependencies file for fig9_node_compare.
# This may be replaced when dependencies are built.
