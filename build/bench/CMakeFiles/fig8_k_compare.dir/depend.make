# Empty dependencies file for fig8_k_compare.
# This may be replaced when dependencies are built.
