file(REMOVE_RECURSE
  "CMakeFiles/fig8_k_compare.dir/fig8_k_compare.cpp.o"
  "CMakeFiles/fig8_k_compare.dir/fig8_k_compare.cpp.o.d"
  "fig8_k_compare"
  "fig8_k_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_k_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
