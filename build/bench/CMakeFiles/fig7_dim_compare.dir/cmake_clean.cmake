file(REMOVE_RECURSE
  "CMakeFiles/fig7_dim_compare.dir/fig7_dim_compare.cpp.o"
  "CMakeFiles/fig7_dim_compare.dir/fig7_dim_compare.cpp.o.d"
  "fig7_dim_compare"
  "fig7_dim_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_dim_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
