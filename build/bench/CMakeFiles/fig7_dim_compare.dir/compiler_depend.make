# Empty compiler generated dependencies file for fig7_dim_compare.
# This may be replaced when dependencies are built.
