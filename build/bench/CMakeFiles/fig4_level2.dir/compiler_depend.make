# Empty compiler generated dependencies file for fig4_level2.
# This may be replaced when dependencies are built.
