file(REMOVE_RECURSE
  "CMakeFiles/fig5_level3.dir/fig5_level3.cpp.o"
  "CMakeFiles/fig5_level3.dir/fig5_level3.cpp.o.d"
  "fig5_level3"
  "fig5_level3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_level3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
