# Empty dependencies file for fig5_level3.
# This may be replaced when dependencies are built.
