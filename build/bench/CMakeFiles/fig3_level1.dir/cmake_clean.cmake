file(REMOVE_RECURSE
  "CMakeFiles/fig3_level1.dir/fig3_level1.cpp.o"
  "CMakeFiles/fig3_level1.dir/fig3_level1.cpp.o.d"
  "fig3_level1"
  "fig3_level1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_level1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
