file(REMOVE_RECURSE
  "CMakeFiles/table1_capability.dir/table1_capability.cpp.o"
  "CMakeFiles/table1_capability.dir/table1_capability.cpp.o.d"
  "table1_capability"
  "table1_capability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_capability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
