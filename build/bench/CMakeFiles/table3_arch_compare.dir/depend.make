# Empty dependencies file for table3_arch_compare.
# This may be replaced when dependencies are built.
