file(REMOVE_RECURSE
  "CMakeFiles/table3_arch_compare.dir/table3_arch_compare.cpp.o"
  "CMakeFiles/table3_arch_compare.dir/table3_arch_compare.cpp.o.d"
  "table3_arch_compare"
  "table3_arch_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_arch_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
