file(REMOVE_RECURSE
  "libswhkm.a"
)
