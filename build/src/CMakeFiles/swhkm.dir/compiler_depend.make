# Empty compiler generated dependencies file for swhkm.
# This may be replaced when dependencies are built.
