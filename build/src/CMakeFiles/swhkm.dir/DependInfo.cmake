
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cpp" "src/CMakeFiles/swhkm.dir/core/checkpoint.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/checkpoint.cpp.o.d"
  "/root/repo/src/core/elkan.cpp" "src/CMakeFiles/swhkm.dir/core/elkan.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/elkan.cpp.o.d"
  "/root/repo/src/core/engine_common.cpp" "src/CMakeFiles/swhkm.dir/core/engine_common.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/engine_common.cpp.o.d"
  "/root/repo/src/core/hamerly.cpp" "src/CMakeFiles/swhkm.dir/core/hamerly.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/hamerly.cpp.o.d"
  "/root/repo/src/core/init.cpp" "src/CMakeFiles/swhkm.dir/core/init.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/init.cpp.o.d"
  "/root/repo/src/core/kmeans.cpp" "src/CMakeFiles/swhkm.dir/core/kmeans.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/kmeans.cpp.o.d"
  "/root/repo/src/core/level1.cpp" "src/CMakeFiles/swhkm.dir/core/level1.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/level1.cpp.o.d"
  "/root/repo/src/core/level2.cpp" "src/CMakeFiles/swhkm.dir/core/level2.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/level2.cpp.o.d"
  "/root/repo/src/core/level3.cpp" "src/CMakeFiles/swhkm.dir/core/level3.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/level3.cpp.o.d"
  "/root/repo/src/core/lloyd.cpp" "src/CMakeFiles/swhkm.dir/core/lloyd.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/lloyd.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/swhkm.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/minibatch.cpp" "src/CMakeFiles/swhkm.dir/core/minibatch.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/minibatch.cpp.o.d"
  "/root/repo/src/core/out_of_core.cpp" "src/CMakeFiles/swhkm.dir/core/out_of_core.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/out_of_core.cpp.o.d"
  "/root/repo/src/core/parallel_init.cpp" "src/CMakeFiles/swhkm.dir/core/parallel_init.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/parallel_init.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/CMakeFiles/swhkm.dir/core/partition.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/partition.cpp.o.d"
  "/root/repo/src/core/perf_model.cpp" "src/CMakeFiles/swhkm.dir/core/perf_model.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/perf_model.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/CMakeFiles/swhkm.dir/core/planner.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/planner.cpp.o.d"
  "/root/repo/src/core/yinyang.cpp" "src/CMakeFiles/swhkm.dir/core/yinyang.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/core/yinyang.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/swhkm.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/image.cpp" "src/CMakeFiles/swhkm.dir/data/image.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/data/image.cpp.o.d"
  "/root/repo/src/data/io.cpp" "src/CMakeFiles/swhkm.dir/data/io.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/data/io.cpp.o.d"
  "/root/repo/src/data/normalize.cpp" "src/CMakeFiles/swhkm.dir/data/normalize.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/data/normalize.cpp.o.d"
  "/root/repo/src/data/streaming.cpp" "src/CMakeFiles/swhkm.dir/data/streaming.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/data/streaming.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/swhkm.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/data/synthetic.cpp.o.d"
  "/root/repo/src/simarch/cost.cpp" "src/CMakeFiles/swhkm.dir/simarch/cost.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/simarch/cost.cpp.o.d"
  "/root/repo/src/simarch/dma.cpp" "src/CMakeFiles/swhkm.dir/simarch/dma.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/simarch/dma.cpp.o.d"
  "/root/repo/src/simarch/ldm.cpp" "src/CMakeFiles/swhkm.dir/simarch/ldm.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/simarch/ldm.cpp.o.d"
  "/root/repo/src/simarch/machine_config.cpp" "src/CMakeFiles/swhkm.dir/simarch/machine_config.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/simarch/machine_config.cpp.o.d"
  "/root/repo/src/simarch/regcomm.cpp" "src/CMakeFiles/swhkm.dir/simarch/regcomm.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/simarch/regcomm.cpp.o.d"
  "/root/repo/src/simarch/topology.cpp" "src/CMakeFiles/swhkm.dir/simarch/topology.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/simarch/topology.cpp.o.d"
  "/root/repo/src/simarch/trace.cpp" "src/CMakeFiles/swhkm.dir/simarch/trace.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/simarch/trace.cpp.o.d"
  "/root/repo/src/swmpi/collectives.cpp" "src/CMakeFiles/swhkm.dir/swmpi/collectives.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/swmpi/collectives.cpp.o.d"
  "/root/repo/src/swmpi/comm.cpp" "src/CMakeFiles/swhkm.dir/swmpi/comm.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/swmpi/comm.cpp.o.d"
  "/root/repo/src/swmpi/mailbox.cpp" "src/CMakeFiles/swhkm.dir/swmpi/mailbox.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/swmpi/mailbox.cpp.o.d"
  "/root/repo/src/swmpi/runtime.cpp" "src/CMakeFiles/swhkm.dir/swmpi/runtime.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/swmpi/runtime.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/swhkm.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/swhkm.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/util/log.cpp.o.d"
  "/root/repo/src/util/units.cpp" "src/CMakeFiles/swhkm.dir/util/units.cpp.o" "gcc" "src/CMakeFiles/swhkm.dir/util/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
